// Package pqueue provides hand-rolled indexed binary heaps used by the
// search iterators.
//
// The BANKS-II iterators need priority queues whose entries can have their
// priority changed in place while queued: the Attach and Activate procedures
// of the paper (Figure 3) update distances and activations of nodes that are
// already on a frontier. container/heap supports Fix, but requires every
// element to record its own heap index through an interface; the algorithms
// here are hot enough that we keep a dedicated implementation with an
// item→position map and no interface dispatch.
package pqueue

// Item is the constraint for heap payloads. Payloads are identified by
// value, so they must be comparable (node IDs in practice).
type Item comparable

// Heap is an indexed binary heap over items of type T with float64
// priorities. Whether it is a min-heap or a max-heap is decided by the
// constructor. The zero value is not usable; use NewMin or NewMax.
type Heap[T Item] struct {
	items []T
	prio  []float64
	pos   map[T]int
	// less reports whether priority a should be popped before priority b.
	less func(a, b float64) bool
}

// NewMin returns a heap that pops the smallest priority first.
func NewMin[T Item]() *Heap[T] {
	return &Heap[T]{pos: make(map[T]int), less: func(a, b float64) bool { return a < b }}
}

// NewMax returns a heap that pops the largest priority first.
func NewMax[T Item]() *Heap[T] {
	return &Heap[T]{pos: make(map[T]int), less: func(a, b float64) bool { return a > b }}
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Contains reports whether item is currently queued.
func (h *Heap[T]) Contains(item T) bool {
	_, ok := h.pos[item]
	return ok
}

// Priority returns the queued priority of item. The second result is false
// if the item is not queued.
func (h *Heap[T]) Priority(item T) (float64, bool) {
	i, ok := h.pos[item]
	if !ok {
		return 0, false
	}
	return h.prio[i], true
}

// Push inserts item with the given priority. If the item is already queued
// its priority is updated instead (equivalent to Update).
func (h *Heap[T]) Push(item T, priority float64) {
	if i, ok := h.pos[item]; ok {
		h.update(i, priority)
		return
	}
	h.items = append(h.items, item)
	h.prio = append(h.prio, priority)
	i := len(h.items) - 1
	h.pos[item] = i
	h.up(i)
}

// PushIfAbsent inserts item only if it is not queued, reporting whether an
// insertion happened. Unlike Push it never updates an existing entry, and
// it costs a single position lookup.
func (h *Heap[T]) PushIfAbsent(item T, priority float64) bool {
	if _, ok := h.pos[item]; ok {
		return false
	}
	h.items = append(h.items, item)
	h.prio = append(h.prio, priority)
	i := len(h.items) - 1
	h.pos[item] = i
	h.up(i)
	return true
}

// Update changes the priority of a queued item and restores heap order.
// It reports whether the item was present.
func (h *Heap[T]) Update(item T, priority float64) bool {
	i, ok := h.pos[item]
	if !ok {
		return false
	}
	h.update(i, priority)
	return true
}

// Improve raises the item toward the front of the queue: it updates the
// priority only if the new priority would pop earlier than the current one.
// It reports whether an update happened. Items that are not queued are
// inserted.
func (h *Heap[T]) Improve(item T, priority float64) bool {
	i, ok := h.pos[item]
	if !ok {
		h.Push(item, priority)
		return true
	}
	if !h.less(priority, h.prio[i]) {
		return false
	}
	h.update(i, priority)
	return true
}

// Bump is Improve without insertion: it raises the priority of item only
// if item is queued and the new priority pops earlier. Absent items are
// left absent. It reports whether an update happened.
func (h *Heap[T]) Bump(item T, priority float64) bool {
	i, ok := h.pos[item]
	if !ok || !h.less(priority, h.prio[i]) {
		return false
	}
	h.update(i, priority)
	return true
}

// Peek returns the front item and its priority without removing it.
// ok is false when the heap is empty.
func (h *Heap[T]) Peek() (item T, priority float64, ok bool) {
	if len(h.items) == 0 {
		return item, 0, false
	}
	return h.items[0], h.prio[0], true
}

// Pop removes and returns the front item and its priority.
// ok is false when the heap is empty.
func (h *Heap[T]) Pop() (item T, priority float64, ok bool) {
	if len(h.items) == 0 {
		return item, 0, false
	}
	item, priority = h.items[0], h.prio[0]
	h.swap(0, len(h.items)-1)
	h.items = h.items[:len(h.items)-1]
	h.prio = h.prio[:len(h.prio)-1]
	delete(h.pos, item)
	if len(h.items) > 0 {
		h.down(0)
	}
	return item, priority, true
}

// Remove deletes an arbitrary queued item. It reports whether the item was
// present.
func (h *Heap[T]) Remove(item T) bool {
	i, ok := h.pos[item]
	if !ok {
		return false
	}
	last := len(h.items) - 1
	h.swap(i, last)
	h.items = h.items[:last]
	h.prio = h.prio[:last]
	delete(h.pos, item)
	if i < last {
		h.down(i)
		h.up(i)
	}
	return true
}

// Items returns the queued items in heap (not priority) order. The slice
// is shared with the heap and must not be modified; it is invalidated by
// the next mutating call. Used for frontier scans (the §4.5 bound needs
// the minimum keyword distance over all queued nodes).
func (h *Heap[T]) Items() []T { return h.items }

// Clear removes all items, retaining allocated capacity.
func (h *Heap[T]) Clear() {
	h.items = h.items[:0]
	h.prio = h.prio[:0]
	clear(h.pos)
}

func (h *Heap[T]) update(i int, priority float64) {
	old := h.prio[i]
	h.prio[i] = priority
	if h.less(priority, old) {
		h.up(i)
	} else {
		h.down(i)
	}
}

func (h *Heap[T]) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.pos[h.items[i]] = i
	h.pos[h.items[j]] = j
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.prio[i], h.prio[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(h.prio[l], h.prio[best]) {
			best = l
		}
		if r < n && h.less(h.prio[r], h.prio[best]) {
			best = r
		}
		if best == i {
			return
		}
		h.swap(i, best)
		i = best
	}
}
