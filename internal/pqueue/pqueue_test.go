package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinHeapBasic(t *testing.T) {
	h := NewMin[int]()
	if _, _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
	if _, _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
	h.Push(1, 3.0)
	h.Push(2, 1.0)
	h.Push(3, 2.0)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	item, prio, ok := h.Peek()
	if !ok || item != 2 || prio != 1.0 {
		t.Fatalf("Peek = (%d,%v,%v), want (2,1,true)", item, prio, ok)
	}
	want := []int{2, 3, 1}
	for _, w := range want {
		got, _, ok := h.Pop()
		if !ok || got != w {
			t.Fatalf("Pop = %d, want %d", got, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("Len after draining = %d, want 0", h.Len())
	}
}

func TestMaxHeapBasic(t *testing.T) {
	h := NewMax[string]()
	h.Push("a", 1)
	h.Push("b", 5)
	h.Push("c", 3)
	want := []string{"b", "c", "a"}
	for _, w := range want {
		got, _, _ := h.Pop()
		if got != w {
			t.Fatalf("Pop = %q, want %q", got, w)
		}
	}
}

func TestPushExistingUpdates(t *testing.T) {
	h := NewMin[int]()
	h.Push(7, 10)
	h.Push(8, 5)
	h.Push(7, 1) // update, not duplicate
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	got, prio, _ := h.Pop()
	if got != 7 || prio != 1 {
		t.Fatalf("Pop = (%d,%v), want (7,1)", got, prio)
	}
}

func TestUpdate(t *testing.T) {
	h := NewMin[int]()
	h.Push(1, 1)
	h.Push(2, 2)
	h.Push(3, 3)
	if !h.Update(3, 0.5) {
		t.Fatal("Update of queued item returned false")
	}
	if h.Update(99, 1) {
		t.Fatal("Update of missing item returned true")
	}
	got, _, _ := h.Pop()
	if got != 3 {
		t.Fatalf("after decrease-key Pop = %d, want 3", got)
	}
	// Increase key as well.
	h.Update(1, 10)
	got, _, _ = h.Pop()
	if got != 2 {
		t.Fatalf("after increase-key Pop = %d, want 2", got)
	}
}

func TestImprove(t *testing.T) {
	min := NewMin[int]()
	min.Push(1, 5)
	if min.Improve(1, 7) {
		t.Fatal("min-heap Improve to worse priority reported update")
	}
	if p, _ := min.Priority(1); p != 5 {
		t.Fatalf("priority changed to %v, want 5", p)
	}
	if !min.Improve(1, 2) {
		t.Fatal("min-heap Improve to better priority reported no update")
	}
	if !min.Improve(42, 9) {
		t.Fatal("Improve of absent item should insert and report true")
	}

	max := NewMax[int]()
	max.Push(1, 5)
	if max.Improve(1, 2) {
		t.Fatal("max-heap Improve to worse priority reported update")
	}
	if !max.Improve(1, 9) {
		t.Fatal("max-heap Improve to better priority reported no update")
	}
	if p, _ := max.Priority(1); p != 9 {
		t.Fatalf("priority = %v, want 9", p)
	}
}

func TestRemove(t *testing.T) {
	h := NewMin[int]()
	for i := 0; i < 10; i++ {
		h.Push(i, float64(10-i))
	}
	if !h.Remove(5) {
		t.Fatal("Remove of queued item returned false")
	}
	if h.Remove(5) {
		t.Fatal("Remove of already-removed item returned true")
	}
	if h.Contains(5) {
		t.Fatal("Contains(5) after Remove")
	}
	var got []int
	for h.Len() > 0 {
		v, _, _ := h.Pop()
		got = append(got, v)
	}
	want := []int{9, 8, 7, 6, 4, 3, 2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("drained %d items, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drain order %v, want %v", got, want)
		}
	}
}

func TestClear(t *testing.T) {
	h := NewMax[int]()
	h.Push(1, 1)
	h.Push(2, 2)
	h.Clear()
	if h.Len() != 0 || h.Contains(1) {
		t.Fatal("Clear did not empty the heap")
	}
	h.Push(3, 3)
	if v, _, _ := h.Pop(); v != 3 {
		t.Fatal("heap unusable after Clear")
	}
}

func TestPriorityLookup(t *testing.T) {
	h := NewMin[int]()
	h.Push(4, 2.5)
	if p, ok := h.Priority(4); !ok || p != 2.5 {
		t.Fatalf("Priority(4) = (%v,%v), want (2.5,true)", p, ok)
	}
	if _, ok := h.Priority(5); ok {
		t.Fatal("Priority of missing item reported ok")
	}
}

// Property: popping everything yields priorities in sorted order, whatever
// mixture of pushes and updates was applied.
func TestQuickSortedDrain(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewMin[int]()
		ref := make(map[int]float64)
		for i := 0; i < int(n)+1; i++ {
			item := rng.Intn(20)
			prio := float64(rng.Intn(1000))
			switch rng.Intn(3) {
			case 0:
				h.Push(item, prio)
				ref[item] = prio
			case 1:
				if h.Update(item, prio) {
					ref[item] = prio
				}
			case 2:
				if h.Remove(item) {
					delete(ref, item)
				}
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		var want []float64
		for _, p := range ref {
			want = append(want, p)
		}
		sort.Float64s(want)
		for _, w := range want {
			item, p, ok := h.Pop()
			if !ok || p != w || ref[item] != p {
				return false
			}
		}
		_, _, ok := h.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: position map stays consistent — every queued item's Priority
// agrees with what Pop eventually yields, under random churn.
func TestQuickPositionConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewMax[int32]()
		for i := 0; i < 200; i++ {
			op := rng.Intn(4)
			item := int32(rng.Intn(30))
			switch op {
			case 0, 1:
				h.Push(item, rng.Float64())
			case 2:
				h.Improve(item, rng.Float64())
			case 3:
				h.Pop()
			}
			if item2, prio, ok := h.Peek(); ok {
				got, ok2 := h.Priority(item2)
				if !ok2 || got != prio {
					return false
				}
			}
		}
		// Drain and verify monotone non-increasing priorities.
		prev := 2.0
		for {
			_, p, ok := h.Pop()
			if !ok {
				break
			}
			if p > prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := NewMin[int32]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Push(int32(i%4096), rng.Float64())
		if h.Len() > 2048 {
			h.Pop()
		}
	}
}

func BenchmarkHeapImprove(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	h := NewMax[int32]()
	for i := 0; i < 2048; i++ {
		h.Push(int32(i), rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Improve(int32(i%2048), rng.Float64())
	}
}
