package store

import (
	"encoding/binary"
	"math"
	"unsafe"

	"banks/internal/graph"
)

// Zero-copy section views.
//
// The file format pins a canonical little-endian layout for every
// fixed-width array. When the host matches that layout (little-endian,
// and for halves the exact Go struct layout asserted below) a section is
// "viewed" in place: the returned slice's backing array IS the mapped
// file region, so opening a snapshot allocates no per-element memory and
// the kernel pages data in on first touch. When the host does not match
// (big-endian, exotic struct layout, or a misaligned heap buffer) the
// same functions transparently fall back to a decode-copy, trading the
// zero-copy property for portability — the format on disk never changes.

// unsafeBytes reslices a uint64 array as bytes, giving callers an
// 8-byte-aligned byte buffer.
func unsafeBytes(words []uint64) []byte {
	if len(words) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
}

// hostLittleEndian reports whether native integer layout matches the
// on-disk little-endian encoding.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// halfZeroCopy reports whether graph.Half's in-memory layout matches the
// canonical 32-byte on-disk record, making an in-place view valid.
var halfZeroCopy = hostLittleEndian &&
	unsafe.Sizeof(graph.Half{}) == halfSize &&
	unsafe.Offsetof(graph.Half{}.To) == 0 &&
	unsafe.Offsetof(graph.Half{}.WOut) == 8 &&
	unsafe.Offsetof(graph.Half{}.WIn) == 16 &&
	unsafe.Offsetof(graph.Half{}.Type) == 24 &&
	unsafe.Offsetof(graph.Half{}.Forward) == 26

// aligned reports whether b's backing array starts at an address aligned
// for a type of the given alignment.
func aligned(b []byte, alignment uintptr) bool {
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%alignment == 0
}

// viewScalar returns b reinterpreted as n values of a fixed-width scalar
// type, zero-copy when possible. decode is the per-element fallback.
// len(b) must already equal n×sizeof(T) (the caller validated section
// lengths).
func viewScalar[T int32 | uint32 | float64](b []byte, n int, decode func([]byte) T) []T {
	if n == 0 {
		return nil
	}
	var z T
	size := int(unsafe.Sizeof(z))
	if hostLittleEndian && aligned(b, unsafe.Alignof(z)) {
		return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]T, n)
	for i := range out {
		out[i] = decode(b[i*size:])
	}
	return out
}

func viewI32(b []byte, n int) []int32 {
	return viewScalar(b, n, func(p []byte) int32 { return int32(binary.LittleEndian.Uint32(p)) })
}

func viewU32(b []byte, n int) []uint32 {
	return viewScalar(b, n, binary.LittleEndian.Uint32)
}

func viewF64(b []byte, n int) []float64 {
	return viewScalar(b, n, func(p []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(p)) })
}

// viewNodeIDs is viewI32 reinterpreted as graph.NodeID (same underlying
// type, so the zero-copy path is preserved).
func viewNodeIDs(b []byte, n int) []graph.NodeID {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && aligned(b, unsafe.Alignof(graph.NodeID(0))) {
		return unsafe.Slice((*graph.NodeID)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(int32(binary.LittleEndian.Uint32(b[i*4:])))
	}
	return out
}

// viewHalves returns the half-edge section as []graph.Half, zero-copy
// when the host layout matches the canonical record. The forward byte of
// every record must already have been validated to be 0 or 1 (a Go bool
// must never alias any other value).
func viewHalves(b []byte, n int) []graph.Half {
	if n == 0 {
		return nil
	}
	if halfZeroCopy && aligned(b, unsafe.Alignof(graph.Half{})) {
		return unsafe.Slice((*graph.Half)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]graph.Half, n)
	for i := range out {
		out[i] = decodeHalf(b[i*halfSize:])
	}
	return out
}

func decodeHalf(p []byte) graph.Half {
	return graph.Half{
		To:      graph.NodeID(int32(binary.LittleEndian.Uint32(p[0:]))),
		WOut:    math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		WIn:     math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
		Type:    graph.EdgeType(binary.LittleEndian.Uint16(p[24:])),
		Forward: p[26] == 1,
	}
}

func encodeHalf(p []byte, h graph.Half) {
	binary.LittleEndian.PutUint32(p[0:], uint32(h.To))
	binary.LittleEndian.PutUint32(p[4:], 0)
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(h.WOut))
	binary.LittleEndian.PutUint64(p[16:], math.Float64bits(h.WIn))
	binary.LittleEndian.PutUint16(p[24:], uint16(h.Type))
	p[26] = 0
	if h.Forward {
		p[26] = 1
	}
	for i := 27; i < halfSize; i++ {
		p[i] = 0
	}
}
