//go:build !unix

package store

import (
	"errors"
	"os"
)

// mmapFile is unavailable on this platform; Open falls back to reading
// the file into an aligned heap buffer (zero-copy views still apply, the
// kernel just cannot demand-page the data).
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	return nil, false, errors.New("store: mmap unsupported on this platform")
}

func munmapFile(data []byte) error { return nil }
