package store

import (
	"bytes"
	"encoding/binary"
	"testing"

	"banks/internal/graph"
)

// FuzzReadSnapshot feeds arbitrary bytes to the snapshot reader. The
// contract under attack: forged section offsets, truncated files and bad
// checksums must produce an error — never a panic, out-of-range access,
// or an allocation larger than the input justifies (the reader only
// allocates in proportion to bytes actually present). Anything accepted
// must be fully queryable and re-serialize to a stable fixed point.
func FuzzReadSnapshot(f *testing.F) {
	res := testState(f)
	var buf bytes.Buffer
	if _, err := Write(&buf, res.Graph, res.Index, res.Mapping, res.EdgeTypes); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])  // truncated mid-section
	f.Add(valid[:headerSize+3])  // truncated inside the section table
	f.Add([]byte(magic))         // magic only
	f.Add([]byte{})              // empty
	forged := bytes.Clone(valid) // forged section offset
	binary.LittleEndian.PutUint64(forged[headerSize+8:], 1<<60)
	f.Add(forged)
	huge := bytes.Clone(valid) // forged node count
	binary.LittleEndian.PutUint64(huge[16:], 1<<40)
	f.Add(huge)
	badcrc := bytes.Clone(valid) // payload corruption under a stale CRC
	badcrc[len(badcrc)-1] ^= 0xff
	f.Add(badcrc)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data), Options{})
		if err != nil {
			return // rejecting malformed input is the job
		}
		// Accepted snapshots must be safe to query...
		g := s.Graph
		for u := 0; u < g.NumNodes(); u++ {
			for _, h := range g.Neighbors(graph.NodeID(u)) {
				if h.To < 0 || int(h.To) >= g.NumNodes() {
					t.Fatalf("accepted snapshot has out-of-range half %+v", h)
				}
			}
			_ = g.Prestige(graph.NodeID(u))
			_ = g.Table(graph.NodeID(u))
		}
		for _, term := range append(s.Index.Terms(), "fuzz", "") {
			for _, u := range s.Index.Lookup(term) {
				if u < 0 || int(u) >= g.NumNodes() {
					t.Fatalf("Lookup(%q) returned out-of-range node %d", term, u)
				}
			}
		}
		// ...and re-serialize to a fixed point.
		var buf1 bytes.Buffer
		if _, err := Write(&buf1, s.Graph, s.Index, s.Mapping, s.EdgeTypes); err != nil {
			t.Fatalf("accepted snapshot failed to serialize: %v", err)
		}
		s2, err := Read(bytes.NewReader(buf1.Bytes()), Options{})
		if err != nil {
			t.Fatalf("re-read of accepted snapshot failed: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := Write(&buf2, s2.Graph, s2.Index, s2.Mapping, s2.EdgeTypes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatal("serialization is not a fixed point after one round trip")
		}
	})
}
