package store

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"reflect"
	"testing"

	"banks/internal/convert"
	"banks/internal/graph"
	"banks/internal/prestige"
	"banks/internal/relational"
)

// testState builds a small converted database with prestige, the same way
// banks.Build does.
func testState(t testing.TB) *convert.Result {
	t.Helper()
	db := relational.NewDatabase()
	author, _ := db.CreateTable("author", []string{"name"}, nil)
	paper, _ := db.CreateTable("paper", []string{"title"}, nil)
	writes, _ := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	paper.Append([]string{"Transaction Recovery"}, nil)
	paper.Append([]string{"Access Path Selection"}, nil)
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{1, 1})
	writes.Append(nil, []int32{0, 1})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	res, err := convert.Build(db, convert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := prestige.Compute(res.Graph, prestige.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Graph.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	return res
}

func writeSnapshot(t testing.TB, res *convert.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := Write(&buf, res.Graph, res.Index, res.Mapping, res.EdgeTypes)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Write reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// assertSameState checks every queryable property matches between the
// original build artifacts and a reopened snapshot.
func assertSameState(t *testing.T, want *convert.Result, got *Snapshot) {
	t.Helper()
	g, gw := got.Graph, want.Graph
	if g.NumNodes() != gw.NumNodes() || g.NumEdges() != gw.NumEdges() {
		t.Fatalf("graph sizes: %d/%d vs %d/%d", g.NumNodes(), g.NumEdges(), gw.NumNodes(), gw.NumEdges())
	}
	if g.MaxPrestige() != gw.MaxPrestige() {
		t.Fatalf("max prestige: %v vs %v", g.MaxPrestige(), gw.MaxPrestige())
	}
	for u := 0; u < gw.NumNodes(); u++ {
		id := graph.NodeID(u)
		if g.Table(id) != gw.Table(id) || g.Prestige(id) != gw.Prestige(id) {
			t.Fatalf("node %d metadata differs", u)
		}
		a, b := gw.Neighbors(id), g.Neighbors(id)
		if len(a) != len(b) {
			t.Fatalf("node %d degree %d vs %d", u, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d half %d: %+v vs %+v", u, i, b[i], a[i])
			}
		}
	}
	if got.Index.NumTerms() != want.Index.NumTerms() {
		t.Fatalf("terms: %d vs %d", got.Index.NumTerms(), want.Index.NumTerms())
	}
	terms := append(want.Index.Terms(), "author", "paper", "writes", "no-such-term")
	for _, term := range terms {
		if a, b := want.Index.Lookup(term), got.Index.Lookup(term); !reflect.DeepEqual(a, b) && (len(a) != 0 || len(b) != 0) {
			t.Fatalf("Lookup(%q): %v vs %v", term, b, a)
		}
	}
	if a, b := want.Mapping.Export(), got.Mapping.Export(); !reflect.DeepEqual(a, b) {
		t.Fatalf("mapping: %v vs %v", b, a)
	}
	if a, b := want.EdgeTypes.Names(), got.EdgeTypes.Names(); !reflect.DeepEqual(a, b) {
		t.Fatalf("edge types: %v vs %v", b, a)
	}
}

func TestRoundTripReader(t *testing.T) {
	res := testState(t)
	data := writeSnapshot(t, res)
	s, err := Read(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameState(t, res, s)
}

func TestRoundTripFileMmap(t *testing.T) {
	res := testState(t)
	path := filepath.Join(t.TempDir(), "x.snap")
	if _, err := WriteFile(path, res.Graph, res.Index, res.Mapping, res.EdgeTypes); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{{}, {NoMmap: true}, {SkipChecksums: true}} {
		s, err := Open(path, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		assertSameState(t, res, s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

// TestWriteDeterministic pins that the same state always serializes to
// the same bytes (required for content-addressed caching and the fuzz
// fixed-point property).
func TestWriteDeterministic(t *testing.T) {
	res := testState(t)
	if !bytes.Equal(writeSnapshot(t, res), writeSnapshot(t, res)) {
		t.Fatal("two writes of the same state differ")
	}
}

// TestReserializeSnapshot writes a snapshot, reopens it, and writes it
// again from the flat-backed state: the bytes must be identical.
func TestReserializeSnapshot(t *testing.T) {
	res := testState(t)
	data := writeSnapshot(t, res)
	s, err := Read(bytes.NewReader(data), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Write(&buf, s.Graph, s.Index, s.Mapping, s.EdgeTypes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf.Bytes()) {
		t.Fatal("snapshot is not a serialization fixed point")
	}
}

func TestCorruptionDetected(t *testing.T) {
	res := testState(t)
	data := writeSnapshot(t, res)

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 7, headerSize - 1, headerSize + 3, len(data) / 2, len(data) - 1} {
			if _, err := Read(bytes.NewReader(data[:n]), Options{}); err == nil {
				t.Fatalf("accepted %d-byte truncation", n)
			}
		}
	})
	t.Run("payload-bit-flip", func(t *testing.T) {
		// Flip one bit inside every section payload (alignment padding is
		// deliberately not checksummed); the CRC pass must reject each —
		// or structural validation where the flip lands in validated data.
		// Either way, corrupted payloads are never accepted.
		count := int(binary.LittleEndian.Uint32(data[12:]))
		for i := 0; i < count; i++ {
			e := data[headerSize+i*entrySize:]
			off := int(binary.LittleEndian.Uint64(e[8:]))
			length := int(binary.LittleEndian.Uint64(e[16:]))
			for pos := off; pos < off+length; pos += 13 {
				c := bytes.Clone(data)
				c[pos] ^= 0x40
				if _, err := Read(bytes.NewReader(c), Options{}); err == nil {
					t.Fatalf("accepted bit flip at %d (section %d)", pos, binary.LittleEndian.Uint32(e))
				}
			}
		}
	})
	t.Run("header-bit-flip", func(t *testing.T) {
		for pos := 0; pos < headerSize; pos++ {
			c := bytes.Clone(data)
			c[pos] ^= 0x01
			if _, err := Read(bytes.NewReader(c), Options{}); err == nil {
				t.Fatalf("accepted header bit flip at %d", pos)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		c := bytes.Clone(data)
		copy(c, "NOTASNAP")
		if _, err := Read(bytes.NewReader(c), Options{}); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
}
