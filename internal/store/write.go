package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"banks/internal/convert"
	"banks/internal/graph"
	"banks/internal/index"
)

// encBufSize is the staging-buffer size for chunked section encoding; big
// sections stream through it instead of being materialized whole.
const encBufSize = 1 << 16

// section is one entry of the file being written: an ID plus a
// re-runnable encoder. Encoders run twice — once into a CRC to size and
// checksum the section, once into the output — so writing never
// materializes a section larger than the staging buffer.
type section struct {
	id     uint32
	enc    func(io.Writer) error
	length uint64
	crc    uint32
	offset uint64
}

// Write serializes the complete queryable state into the snapshot format.
// mapping and edgeTypes may be nil (their sections are written empty).
// The index must be frozen. Returns the number of bytes written.
func Write(w io.Writer, g *graph.Graph, ix *index.Index, mapping *convert.Mapping, edgeTypes *convert.EdgeTypes) (int64, error) {
	return WriteSharded(w, g, ix, mapping, edgeTypes, nil)
}

// WriteSharded is Write with an optional shard-meta section appended
// (section 16). A nil meta writes a plain snapshot, byte-identical to
// Write's output.
func WriteSharded(w io.Writer, g *graph.Graph, ix *index.Index, mapping *convert.Mapping, edgeTypes *convert.EdgeTypes, meta *ShardMeta) (int64, error) {
	return WriteExtras(w, g, ix, mapping, edgeTypes, Extras{Meta: meta})
}

// Extras bundles the optional trailing sections of a snapshot write. The
// zero value writes a plain snapshot byte-identical to Write's output:
// generation 0 omits the generation section entirely (old readers and
// byte-level golden tests see no difference), matching the open path's
// "missing section means generation 0" rule.
type Extras struct {
	// Meta, when non-nil, appends the shard-meta section (16).
	Meta *ShardMeta
	// Generation, when non-zero, appends the generation section (17).
	// Compacted snapshots carry the generation that produced them.
	Generation uint64
}

// WriteExtras is Write with optional trailing sections.
func WriteExtras(w io.Writer, g *graph.Graph, ix *index.Index, mapping *convert.Mapping, edgeTypes *convert.EdgeTypes, ex Extras) (int64, error) {
	if g == nil || ix == nil {
		return 0, fmt.Errorf("store: nil graph or index")
	}
	flat, err := ix.Flatten()
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	gs := g.Sections()

	var mappingBlob, edgeTypeBlob []byte
	if mapping != nil {
		mappingBlob = encodeMapping(mapping.Export())
	} else {
		mappingBlob = encodeMapping(nil)
	}
	if edgeTypes != nil {
		edgeTypeBlob = encodeStringBlob(edgeTypes.Names())
	} else {
		edgeTypeBlob = encodeStringBlob(nil)
	}

	secs := []section{
		{id: secGraphOffsets, enc: encI32(gs.Offsets)},
		{id: secGraphHalves, enc: encHalves(gs.Halves)},
		{id: secNodeTable, enc: encI32(gs.NodeTable)},
		{id: secPrestige, enc: encF64(gs.Prestige)},
		{id: secTableNames, enc: encBytes(encodeStringBlob(gs.Tables))},
		{id: secTermOffsets, enc: encU32(flat.TermOffsets)},
		{id: secTermBytes, enc: encBytes(flat.TermBytes)},
		{id: secPostOffsets, enc: encU32(flat.PostOffsets)},
		{id: secPostings, enc: encNodeIDs(flat.Postings)},
		{id: secRelOffsets, enc: encU32(flat.RelOffsets)},
		{id: secRelBytes, enc: encBytes(flat.RelBytes)},
		{id: secRelPostOffsets, enc: encU32(flat.RelPostOffsets)},
		{id: secRelPostings, enc: encNodeIDs(flat.RelPostings)},
		{id: secMapping, enc: encBytes(mappingBlob)},
		{id: secEdgeTypes, enc: encBytes(edgeTypeBlob)},
	}
	if ex.Meta != nil {
		secs = append(secs, section{id: secShardMeta, enc: encBytes(ex.Meta.encode())})
	}
	if ex.Generation != 0 {
		var genBuf [8]byte
		binary.LittleEndian.PutUint64(genBuf[:], ex.Generation)
		secs = append(secs, section{id: secGeneration, enc: encBytes(genBuf[:])})
	}

	// Pass 1: size and checksum every section.
	for i := range secs {
		h := crc32.New(castagnoli)
		cw := &countWriter{w: h}
		if err := secs[i].enc(cw); err != nil {
			return 0, err
		}
		secs[i].length = uint64(cw.n)
		secs[i].crc = h.Sum32()
	}

	// Lay sections out back-to-back on alignment boundaries.
	off := align64(uint64(headerSize + len(secs)*entrySize + 4))
	for i := range secs {
		secs[i].offset = off
		off = align64(off + secs[i].length)
	}

	// Header + section table + meta CRC.
	hdr := make([]byte, headerSize+len(secs)*entrySize)
	copy(hdr, magic)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], version)
	le.PutUint32(hdr[12:], uint32(len(secs)))
	le.PutUint64(hdr[16:], uint64(g.NumNodes()))
	le.PutUint64(hdr[24:], uint64(len(gs.Halves)))
	le.PutUint64(hdr[32:], uint64(gs.NumOrigEdges))
	le.PutUint64(hdr[40:], uint64(flat.NumTerms()))
	le.PutUint64(hdr[48:], uint64(len(flat.RelOffsets)-1))
	le.PutUint64(hdr[56:], math.Float64bits(gs.MaxPrestige))
	for i, s := range secs {
		e := hdr[headerSize+i*entrySize:]
		le.PutUint32(e[0:], s.id)
		le.PutUint32(e[4:], s.crc)
		le.PutUint64(e[8:], s.offset)
		le.PutUint64(e[16:], s.length)
	}

	cw := &countWriter{w: w}
	if _, err := cw.Write(hdr); err != nil {
		return cw.n, err
	}
	var crcBuf [4]byte
	le.PutUint32(crcBuf[:], crc32.Checksum(hdr, castagnoli))
	if _, err := cw.Write(crcBuf[:]); err != nil {
		return cw.n, err
	}

	// Pass 2: emit payloads with alignment padding.
	for _, s := range secs {
		if err := pad(cw, int64(s.offset)-cw.n); err != nil {
			return cw.n, err
		}
		if err := s.enc(cw); err != nil {
			return cw.n, err
		}
		if uint64(cw.n) != s.offset+s.length {
			return cw.n, fmt.Errorf("store: section %d encoder wrote %d bytes, sized %d", s.id, uint64(cw.n)-s.offset, s.length)
		}
	}
	return cw.n, nil
}

// WriteFile writes a snapshot to path via a temp file + rename so a crash
// mid-write never leaves a truncated snapshot at the target name. The
// result is world-readable (0644) like a plain os.Create, not
// CreateTemp's 0600 — snapshot caches are commonly shared between users.
func WriteFile(path string, g *graph.Graph, ix *index.Index, mapping *convert.Mapping, edgeTypes *convert.EdgeTypes) (int64, error) {
	return WriteShardedFile(path, g, ix, mapping, edgeTypes, nil)
}

// WriteShardedFile is WriteFile with an optional shard-meta section.
func WriteShardedFile(path string, g *graph.Graph, ix *index.Index, mapping *convert.Mapping, edgeTypes *convert.EdgeTypes, meta *ShardMeta) (int64, error) {
	return WriteExtrasFile(path, g, ix, mapping, edgeTypes, Extras{Meta: meta})
}

// WriteExtrasFile is WriteFile with optional trailing sections.
func WriteExtrasFile(path string, g *graph.Graph, ix *index.Index, mapping *convert.Mapping, edgeTypes *convert.EdgeTypes, ex Extras) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".banksnap-*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name())
	n, err := WriteExtras(tmp, g, ix, mapping, edgeTypes, ex)
	if err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return n, err
	}
	// Durability chain for crash recovery: the data must be on stable
	// storage before the rename publishes the file, and the rename itself
	// must be persisted (directory fsync) before callers act on the new
	// file's existence — compaction truncates the write-ahead log only
	// after this returns, so a lost rename with a truncated log would
	// lose acknowledged mutations.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return n, err
	}
	if err := tmp.Close(); err != nil {
		return n, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return n, err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		// Best effort: some filesystems refuse directory fsync; the
		// rename is still ordered after the data sync above.
		_ = dir.Sync()
		dir.Close()
	}
	return n, nil
}

// Chunked encoders: each streams its array through a stack buffer so the
// encode cost is one sequential pass with no per-element I/O calls.

// encScalar returns a re-runnable encoder for a fixed-width scalar slice;
// size is the encoded width and put encodes one element.
func encScalar[T any](s []T, size int, put func([]byte, T)) func(io.Writer) error {
	return func(w io.Writer) error {
		s := s // shadow: the encoder runs twice (size/CRC pass, then write pass)
		var buf [encBufSize]byte
		for len(s) > 0 {
			n := min(len(s), encBufSize/size)
			for i := 0; i < n; i++ {
				put(buf[i*size:], s[i])
			}
			if _, err := w.Write(buf[:n*size]); err != nil {
				return err
			}
			s = s[n:]
		}
		return nil
	}
}

func encI32(s []int32) func(io.Writer) error {
	return encScalar(s, 4, func(b []byte, v int32) { binary.LittleEndian.PutUint32(b, uint32(v)) })
}

func encU32(s []uint32) func(io.Writer) error {
	return encScalar(s, 4, binary.LittleEndian.PutUint32)
}

func encF64(s []float64) func(io.Writer) error {
	return encScalar(s, 8, func(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) })
}

func encNodeIDs(s []graph.NodeID) func(io.Writer) error {
	return encScalar(s, 4, func(b []byte, v graph.NodeID) { binary.LittleEndian.PutUint32(b, uint32(v)) })
}

func encHalves(s []graph.Half) func(io.Writer) error {
	return encScalar(s, halfSize, encodeHalf)
}

func encBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

// encodeStringBlob lays out names as: count u32 | offsets u32[count+1]
// (relative to the start of the byte region) | bytes.
func encodeStringBlob(names []string) []byte {
	size := 4 + 4*(len(names)+1)
	for _, s := range names {
		size += len(s)
	}
	out := make([]byte, 4+4*(len(names)+1), size)
	binary.LittleEndian.PutUint32(out, uint32(len(names)))
	off := uint32(0)
	for i, s := range names {
		binary.LittleEndian.PutUint32(out[4+4*i:], off)
		off += uint32(len(s))
		out = append(out, s...)
	}
	binary.LittleEndian.PutUint32(out[4+4*len(names):], off)
	return out
}

// encodeMapping is a string blob of table names followed by the i32 base
// node ID of each table.
func encodeMapping(bases []convert.TableBase) []byte {
	names := make([]string, len(bases))
	for i, b := range bases {
		names[i] = b.Table
	}
	out := encodeStringBlob(names)
	for _, b := range bases {
		out = binary.LittleEndian.AppendUint32(out, uint32(b.Base))
	}
	return out
}

// pad writes n zero bytes.
func pad(w io.Writer, n int64) error {
	if n < 0 {
		return fmt.Errorf("store: negative padding %d", n)
	}
	var zeros [align]byte
	for n > 0 {
		c := min(n, int64(len(zeros)))
		if _, err := w.Write(zeros[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
