package store

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerationRoundTrip(t *testing.T) {
	res := testState(t)
	var buf bytes.Buffer
	if _, err := WriteExtras(&buf, res.Graph, res.Index, res.Mapping, res.EdgeTypes, Extras{Generation: 7}); err != nil {
		t.Fatal(err)
	}
	s, err := Read(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Generation != 7 {
		t.Fatalf("Generation = %d, want 7", s.Generation)
	}
	// The extra section must not perturb the rest of the snapshot.
	assertSameState(t, res, s)
}

// TestGenerationZeroOmitted: generation 0 writes no section, so output
// stays byte-identical to the pre-generation format and decodes as 0.
func TestGenerationZeroOmitted(t *testing.T) {
	res := testState(t)
	plain := writeSnapshot(t, res)
	var viaExtras bytes.Buffer
	if _, err := WriteExtras(&viaExtras, res.Graph, res.Index, res.Mapping, res.EdgeTypes, Extras{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, viaExtras.Bytes()) {
		t.Fatal("Extras{} output differs from plain Write output")
	}
	s, err := Read(bytes.NewReader(plain), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Generation != 0 {
		t.Fatalf("pre-generation snapshot decoded generation %d", s.Generation)
	}
}

// TestGenerationSectionValidation: a malformed generation section (wrong
// length, or explicit zero — writers omit zero) must be rejected.
func TestGenerationSectionValidation(t *testing.T) {
	res := testState(t)

	write := func(gen uint64) []byte {
		var buf bytes.Buffer
		if _, err := WriteExtras(&buf, res.Graph, res.Index, res.Mapping, res.EdgeTypes, Extras{Generation: gen}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Corrupt the encoded generation value in place: locate the 8-byte
	// little-endian payload (value 0x0101010101010101 is distinctive) and
	// zero it, turning a valid section into the forbidden explicit zero.
	// SkipChecksums isolates the semantic check from CRC detection.
	blob := write(0x0101010101010101)
	pat := bytes.Repeat([]byte{1}, 8)
	i := bytes.Index(blob, pat)
	if i < 0 {
		t.Fatal("cannot locate generation payload in snapshot")
	}
	copy(blob[i:], make([]byte, 8))
	if _, err := Read(bytes.NewReader(blob), Options{SkipChecksums: true}); err == nil || !strings.Contains(err.Error(), "generation") {
		t.Fatalf("explicit zero generation accepted (err=%v)", err)
	}
	// Without SkipChecksums the same corruption trips the section CRC.
	if _, err := Read(bytes.NewReader(blob), Options{}); err == nil {
		t.Fatal("corrupted section passed checksum verification")
	}
}
