package store

import (
	"encoding/binary"
	"fmt"
)

// shardMetaSize is the fixed on-disk size of the shard-meta section.
const shardMetaSize = 40

// ShardMeta describes one shard of a partitioned snapshot. It is written
// as optional section 16, so shard files remain ordinary snapshots to
// older readers (unknown section IDs are ignored) while shard-aware
// tooling can discover the partition layout.
//
// A shard file keeps the full node-indexed arrays of the source snapshot
// (offsets, node table, prestige, mapping) so global node IDs, labels and
// MaxPrestige are preserved bit-for-bit; only adjacency halves and
// posting lists are restricted to the nodes this shard owns.
type ShardMeta struct {
	// Shard is this file's index in [0, NumShards).
	Shard uint32
	// NumShards is the partition width the dataset was split into.
	NumShards uint32
	// OwnedNodes is the number of nodes whose adjacency and postings this
	// shard serves.
	OwnedNodes uint64
	// OwnedComponents is the number of connected components assigned to
	// this shard.
	OwnedComponents uint64
	// DuplicatedEdges counts boundary edges stored on more than one shard.
	// The component-closed partition makes this 0 by construction (no edge
	// ever crosses a shard boundary); the field discloses that invariant
	// on disk and leaves room for overlap-based partitions later.
	DuplicatedEdges uint64
}

// encode lays the meta out little-endian in field order.
func (m *ShardMeta) encode() []byte {
	out := make([]byte, shardMetaSize)
	le := binary.LittleEndian
	le.PutUint32(out[0:], m.Shard)
	le.PutUint32(out[4:], m.NumShards)
	le.PutUint64(out[8:], m.OwnedNodes)
	le.PutUint64(out[16:], m.OwnedComponents)
	le.PutUint64(out[24:], m.DuplicatedEdges)
	return out
}

// decodeShardMeta parses and validates a shard-meta section.
func decodeShardMeta(b []byte, numNodes uint64) (*ShardMeta, error) {
	if len(b) != shardMetaSize {
		return nil, fmt.Errorf("shard meta has %d bytes, want %d", len(b), shardMetaSize)
	}
	le := binary.LittleEndian
	m := &ShardMeta{
		Shard:           le.Uint32(b[0:]),
		NumShards:       le.Uint32(b[4:]),
		OwnedNodes:      le.Uint64(b[8:]),
		OwnedComponents: le.Uint64(b[16:]),
		DuplicatedEdges: le.Uint64(b[24:]),
	}
	if m.NumShards == 0 || m.Shard >= m.NumShards {
		return nil, fmt.Errorf("shard meta names shard %d of %d", m.Shard, m.NumShards)
	}
	if m.OwnedNodes > numNodes {
		return nil, fmt.Errorf("shard meta owns %d of %d nodes", m.OwnedNodes, numNodes)
	}
	return m, nil
}
