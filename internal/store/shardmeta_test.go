package store

import (
	"bytes"
	"testing"
)

func TestShardMetaRoundTrip(t *testing.T) {
	res := testState(t)
	meta := &ShardMeta{Shard: 2, NumShards: 5, OwnedNodes: 3, OwnedComponents: 1, DuplicatedEdges: 0}
	var buf bytes.Buffer
	if _, err := WriteSharded(&buf, res.Graph, res.Index, res.Mapping, res.EdgeTypes, meta); err != nil {
		t.Fatal(err)
	}
	s, err := Read(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ShardMeta == nil {
		t.Fatal("reopened snapshot carries no shard meta")
	}
	if *s.ShardMeta != *meta {
		t.Fatalf("shard meta round-trip: got %+v, want %+v", *s.ShardMeta, *meta)
	}
	// The rest of the state must be unaffected by the extra section.
	assertSameState(t, res, s)
}

// TestShardMetaAbsent: a plain snapshot decodes with a nil ShardMeta,
// and Write/WriteSharded(nil) are byte-identical.
func TestShardMetaAbsent(t *testing.T) {
	res := testState(t)
	plain := writeSnapshot(t, res)
	var viaSharded bytes.Buffer
	if _, err := WriteSharded(&viaSharded, res.Graph, res.Index, res.Mapping, res.EdgeTypes, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, viaSharded.Bytes()) {
		t.Fatal("WriteSharded(nil) output differs from Write output")
	}
	s, err := Read(bytes.NewReader(plain), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ShardMeta != nil {
		t.Fatalf("plain snapshot decoded shard meta %+v", *s.ShardMeta)
	}
}

func TestShardMetaValidation(t *testing.T) {
	cases := []struct {
		name string
		meta ShardMeta
		blob func([]byte) []byte // optional corruption of the encoding
	}{
		{name: "truncated", meta: ShardMeta{Shard: 0, NumShards: 2}, blob: func(b []byte) []byte { return b[:len(b)-1] }},
		{name: "zero shards", meta: ShardMeta{Shard: 0, NumShards: 0}},
		{name: "shard out of range", meta: ShardMeta{Shard: 3, NumShards: 3}},
		{name: "owned exceeds nodes", meta: ShardMeta{Shard: 0, NumShards: 2, OwnedNodes: 1 << 40}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.meta.encode()
			if tc.blob != nil {
				b = tc.blob(b)
			}
			if _, err := decodeShardMeta(b, 100); err == nil {
				t.Fatalf("decodeShardMeta accepted invalid %s", tc.name)
			}
		})
	}
	good := ShardMeta{Shard: 1, NumShards: 2, OwnedNodes: 100}
	if _, err := decodeShardMeta(good.encode(), 100); err != nil {
		t.Fatalf("decodeShardMeta rejected valid meta: %v", err)
	}
}
