//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps the file read-only. Returning mapped=false (with any
// error) tells the caller to fall back to a heap read; mapping failures
// are therefore never fatal.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size <= 0 || size > math.MaxInt {
		return nil, false, fmt.Errorf("store: cannot map %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
