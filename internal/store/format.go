// Package store implements the BANKS single-file snapshot format: one
// versioned, checksummed, section-aligned file holding the complete
// queryable state — graph adjacency, prestige, node/table metadata, and
// the frozen inverted index — laid out so every fixed-width array can be
// memory-mapped and read zero-copy.
//
// File layout (all integers little-endian):
//
//	header (64 bytes)
//	section table (sectionCount × 24 bytes)
//	meta CRC32-C (4 bytes, over header + section table)
//	sections, each starting at a 64-byte-aligned offset, zero-padded
//
// Header:
//
//	0  magic "BANKSNAP"
//	8  version  u32
//	12 sectionCount u32
//	16 numNodes u64
//	24 numHalves u64
//	32 numOrigEdges u64
//	40 numTerms u64
//	48 numRelations u64
//	56 maxPrestige f64
//
// Section table entry:
//
//	0  id u32
//	4  crc u32 (CRC32-C of the section's payload bytes)
//	8  offset u64 (from file start; 64-byte aligned)
//	16 length u64 (payload bytes, excluding alignment padding)
//
// Opening verifies the meta CRC, all structural invariants the query
// paths rely on, and (by default) every section CRC; see Open. See
// docs/SNAPSHOT_FORMAT.md for the full specification.
package store

import "hash/crc32"

const (
	magic      = "BANKSNAP"
	version    = uint32(1)
	headerSize = 64
	entrySize  = 24
	align      = 64

	// halfSize is the on-disk record size of one graph.Half:
	// to i32 @0, pad @4, wout f64 @8, win f64 @16, type u16 @24,
	// forward u8 @26, pad @27 — matching Go's in-memory struct layout on
	// little-endian 64-bit targets so the section can be viewed in place.
	halfSize = 32

	// maxSections bounds the section table a reader will accept.
	maxSections = 64
	// maxStrings bounds decoded string-blob entry counts (table names,
	// mapping entries, edge-type names).
	maxStrings = 1 << 20
)

// Section IDs. Readers ignore unknown IDs so additive format evolution
// does not require a version bump.
const (
	secGraphOffsets   = uint32(1)  // i32[numNodes+1]
	secGraphHalves    = uint32(2)  // halfSize × numHalves bytes
	secNodeTable      = uint32(3)  // i32[numNodes]
	secPrestige       = uint32(4)  // f64[numNodes]
	secTableNames     = uint32(5)  // string blob
	secTermOffsets    = uint32(6)  // u32[numTerms+1]
	secTermBytes      = uint32(7)  // raw term bytes
	secPostOffsets    = uint32(8)  // u32[numTerms+1]
	secPostings       = uint32(9)  // i32[]
	secRelOffsets     = uint32(10) // u32[numRelations+1]
	secRelBytes       = uint32(11) // raw relation-name bytes
	secRelPostOffsets = uint32(12) // u32[numRelations+1]
	secRelPostings    = uint32(13) // i32[]
	secMapping        = uint32(14) // string blob + i32 bases
	secEdgeTypes      = uint32(15) // string blob
	secShardMeta      = uint32(16) // shardMetaSize bytes; optional (shard files only)
	secGeneration     = uint32(17) // u64 LE; optional (absent means generation 0)
)

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// align64 rounds n up to the next multiple of align.
func align64(n uint64) uint64 { return (n + align - 1) &^ uint64(align-1) }
