package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"banks/internal/convert"
	"banks/internal/graph"
	"banks/internal/index"
)

// Options tunes snapshot opening. The zero value is the safe default:
// memory-map when the platform supports it and verify every checksum.
type Options struct {
	// SkipChecksums skips per-section CRC verification. Structural
	// validation (the invariants that keep query paths panic-free) always
	// runs; only bit-rot detection is skipped. The meta CRC over the
	// header and section table is always verified.
	SkipChecksums bool
	// NoMmap forces reading the file into the heap instead of mapping it.
	NoMmap bool
}

// Snapshot is an opened snapshot: a ready-to-query graph + index whose
// big arrays alias the underlying file mapping (when ZeroCopy reports
// true). Keep the Snapshot open for as long as any of its components are
// in use; Close unmaps the file.
type Snapshot struct {
	Graph     *graph.Graph
	Index     *index.Index
	Mapping   *convert.Mapping
	EdgeTypes *convert.EdgeTypes
	// ShardMeta is non-nil when the file is one shard of a partitioned
	// dataset (optional section 16); nil for ordinary snapshots.
	ShardMeta *ShardMeta
	// Generation is the snapshot's compaction generation (optional
	// section 17). Files written before generations existed — and every
	// build-time snapshot — have no section and read as generation 0.
	Generation uint64

	data     []byte
	mapped   bool
	zeroCopy bool
}

// ZeroCopy reports whether the graph and index arrays alias the mapped
// file (true on little-endian hosts with the canonical struct layout).
func (s *Snapshot) ZeroCopy() bool { return s.zeroCopy }

// Close releases the file mapping. The Snapshot's graph and index must
// not be used afterwards. Close is idempotent and a no-op for heap-backed
// snapshots.
func (s *Snapshot) Close() error {
	if !s.mapped {
		return nil
	}
	s.mapped = false
	data := s.data
	s.data = nil
	return munmapFile(data)
}

// Open maps (or, with opts.NoMmap or on platforms without mmap, reads)
// the snapshot file and returns its queryable state. The work done is one
// sequential validation pass over the file — no tokenization, sorting, or
// graph building — so a snapshot is ready to query in roughly the time it
// takes to page the data in.
func Open(path string, opts Options) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var (
		data   []byte
		mapped bool
	)
	if !opts.NoMmap {
		data, mapped, _ = mmapFile(f, st.Size())
	}
	if !mapped {
		// The size is known, so read into one exactly-sized aligned buffer
		// (the growth loop in readAllAligned is for size-unknown streams).
		if st.Size() > math.MaxInt {
			return nil, fmt.Errorf("store: %s: %d-byte snapshot exceeds addressable memory", path, st.Size())
		}
		data = alignedBuf(int(st.Size()))
		if _, err := io.ReadFull(f, data); err != nil {
			return nil, err
		}
	}
	s, err := fromBytes(data, opts)
	if err != nil {
		if mapped {
			munmapFile(data)
		}
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	s.mapped = mapped
	return s, nil
}

// Read decodes a snapshot from a stream into a heap-backed Snapshot. It
// allocates in proportion to the bytes actually present, never to sizes
// claimed by the header, so truncated or forged inputs cannot force large
// allocations.
func Read(r io.Reader, opts Options) (*Snapshot, error) {
	data, err := readAllAligned(r)
	if err != nil {
		return nil, err
	}
	s, err := fromBytes(data, opts)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return s, nil
}

// readAllAligned is io.ReadAll with an 8-byte-aligned backing array
// (allocated as uint64s) so scalar zero-copy views remain valid for
// heap-backed snapshots.
func readAllAligned(r io.Reader) ([]byte, error) {
	buf := alignedBuf(32 * 1024)
	n := 0
	for {
		if n == len(buf) {
			nb := alignedBuf(2 * len(buf))
			copy(nb, buf)
			buf = nb
		}
		c, err := r.Read(buf[n:])
		n += c
		if err == io.EOF {
			return buf[:n], nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func alignedBuf(n int) []byte {
	words := make([]uint64, (n+7)/8)
	return unsafeBytes(words)[:n]
}

// fromBytes validates and assembles a snapshot over data. On success the
// returned snapshot's arrays alias data wherever zero-copy views apply.
func fromBytes(data []byte, opts Options) (*Snapshot, error) {
	le := binary.LittleEndian
	if len(data) < headerSize+4 {
		return nil, fmt.Errorf("truncated snapshot: %d bytes", len(data))
	}
	if string(data[:8]) != magic {
		return nil, fmt.Errorf("bad magic %q", data[:8])
	}
	if v := le.Uint32(data[8:]); v != version {
		return nil, fmt.Errorf("unsupported snapshot version %d", v)
	}
	sectionCount := int(le.Uint32(data[12:]))
	if sectionCount > maxSections {
		return nil, fmt.Errorf("implausible section count %d", sectionCount)
	}
	tableEnd := headerSize + sectionCount*entrySize
	if len(data) < tableEnd+4 {
		return nil, fmt.Errorf("truncated section table")
	}
	if got, want := crc32.Checksum(data[:tableEnd], castagnoli), le.Uint32(data[tableEnd:]); got != want {
		return nil, fmt.Errorf("header checksum mismatch: %08x != %08x", got, want)
	}

	numNodes := le.Uint64(data[16:])
	numHalves := le.Uint64(data[24:])
	numOrig := le.Uint64(data[32:])
	numTerms := le.Uint64(data[40:])
	numRels := le.Uint64(data[48:])
	const maxCount = 1<<31 - 2 // NodeID and section offsets are int32-indexed
	for _, c := range []uint64{numNodes, numHalves, numOrig, numTerms, numRels} {
		if c > maxCount {
			return nil, fmt.Errorf("implausible count %d in header", c)
		}
	}
	if numOrig*2 != numHalves {
		return nil, fmt.Errorf("inconsistent edge counts: halves=%d orig=%d", numHalves, numOrig)
	}

	// Parse the section table; every fixed-width section must have the
	// exact length implied by the header counts.
	want := map[uint32]uint64{
		secGraphOffsets:   (numNodes + 1) * 4,
		secNodeTable:      numNodes * 4,
		secPrestige:       numNodes * 8,
		secGraphHalves:    numHalves * halfSize,
		secTermOffsets:    (numTerms + 1) * 4,
		secPostOffsets:    (numTerms + 1) * 4,
		secRelOffsets:     (numRels + 1) * 4,
		secRelPostOffsets: (numRels + 1) * 4,
	}
	byID := make(map[uint32][]byte, sectionCount)
	crcs := make(map[uint32]uint32, sectionCount)
	fileSize := uint64(len(data))
	for i := 0; i < sectionCount; i++ {
		e := data[headerSize+i*entrySize:]
		id := le.Uint32(e[0:])
		crc := le.Uint32(e[4:])
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		if off%align != 0 {
			return nil, fmt.Errorf("section %d misaligned at offset %d", id, off)
		}
		if off > fileSize || length > fileSize-off {
			return nil, fmt.Errorf("section %d [%d,+%d) outside %d-byte file", id, off, length, fileSize)
		}
		if uint64(tableEnd+4) > off && length > 0 {
			return nil, fmt.Errorf("section %d overlaps header", id)
		}
		if _, dup := byID[id]; dup {
			return nil, fmt.Errorf("duplicate section %d", id)
		}
		if w, ok := want[id]; ok && w != length {
			return nil, fmt.Errorf("section %d has %d bytes, header implies %d", id, length, w)
		}
		byID[id] = data[off : off+length : off+length]
		crcs[id] = crc
	}
	var missing []uint32
	for _, id := range []uint32{secGraphOffsets, secGraphHalves, secNodeTable, secPrestige,
		secTableNames, secTermOffsets, secTermBytes, secPostOffsets, secPostings,
		secRelOffsets, secRelBytes, secRelPostOffsets, secRelPostings, secMapping, secEdgeTypes} {
		if _, ok := byID[id]; !ok {
			missing = append(missing, id)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("missing sections %v", missing)
	}
	if len(byID[secPostings])%4 != 0 || len(byID[secRelPostings])%4 != 0 {
		return nil, fmt.Errorf("posting section length not a multiple of 4")
	}
	if !opts.SkipChecksums {
		for id, sec := range byID {
			if got := crc32.Checksum(sec, castagnoli); got != crcs[id] {
				return nil, fmt.Errorf("section %d checksum mismatch: %08x != %08x", id, got, crcs[id])
			}
		}
	}

	// A Go bool may only alias bytes 0 and 1; reject anything else before
	// the halves section can be viewed in place.
	halvesRaw := byID[secGraphHalves]
	for i := uint64(0); i < numHalves; i++ {
		if b := halvesRaw[i*halfSize+26]; b > 1 {
			return nil, fmt.Errorf("half %d has invalid forward byte %d", i, b)
		}
	}

	tables, err := decodeStringBlob(byID[secTableNames])
	if err != nil {
		return nil, fmt.Errorf("table names: %w", err)
	}
	g, err := graph.FromSections(graph.Sections{
		Offsets:      viewI32(byID[secGraphOffsets], int(numNodes)+1),
		Halves:       viewHalves(halvesRaw, int(numHalves)),
		NodeTable:    viewI32(byID[secNodeTable], int(numNodes)),
		Prestige:     viewF64(byID[secPrestige], int(numNodes)),
		Tables:       tables,
		NumOrigEdges: int(numOrig),
	})
	if err != nil {
		return nil, err
	}
	if got := math.Float64bits(g.MaxPrestige()); got != le.Uint64(data[56:]) {
		return nil, fmt.Errorf("header max prestige does not match prestige section")
	}

	flat := &index.Flat{
		TermOffsets:    viewU32(byID[secTermOffsets], int(numTerms)+1),
		TermBytes:      byID[secTermBytes],
		PostOffsets:    viewU32(byID[secPostOffsets], int(numTerms)+1),
		Postings:       viewNodeIDs(byID[secPostings], len(byID[secPostings])/4),
		RelOffsets:     viewU32(byID[secRelOffsets], int(numRels)+1),
		RelBytes:       byID[secRelBytes],
		RelPostOffsets: viewU32(byID[secRelPostOffsets], int(numRels)+1),
		RelPostings:    viewNodeIDs(byID[secRelPostings], len(byID[secRelPostings])/4),
	}
	if err := flat.Validate(int(numNodes)); err != nil {
		return nil, err
	}

	bases, err := decodeMapping(byID[secMapping], int(numNodes))
	if err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	etNames, err := decodeStringBlob(byID[secEdgeTypes])
	if err != nil {
		return nil, fmt.Errorf("edge types: %w", err)
	}
	var shardMeta *ShardMeta
	if raw, ok := byID[secShardMeta]; ok {
		if shardMeta, err = decodeShardMeta(raw, numNodes); err != nil {
			return nil, err
		}
	}
	var generation uint64
	if raw, ok := byID[secGeneration]; ok {
		if len(raw) != 8 {
			return nil, fmt.Errorf("store: generation section is %d bytes, want 8", len(raw))
		}
		generation = binary.LittleEndian.Uint64(raw)
		if generation == 0 {
			return nil, fmt.Errorf("store: generation section present but zero (writers omit it at generation 0)")
		}
	}

	return &Snapshot{
		Graph:      g,
		Index:      index.FromFlat(flat),
		Mapping:    convert.NewMapping(bases),
		EdgeTypes:  convert.NewEdgeTypes(etNames),
		ShardMeta:  shardMeta,
		Generation: generation,
		data:       data,
		zeroCopy:   halfZeroCopy,
	}, nil
}

// decodeStringBlob parses the count|offsets|bytes layout written by
// encodeStringBlob, copying each entry into a fresh string.
func decodeStringBlob(b []byte) ([]string, error) {
	le := binary.LittleEndian
	if len(b) < 8 {
		return nil, fmt.Errorf("blob shorter than its own header (%d bytes)", len(b))
	}
	count := int(le.Uint32(b))
	if count > maxStrings {
		return nil, fmt.Errorf("implausible entry count %d", count)
	}
	hdr := 4 + 4*(count+1)
	if len(b) < hdr {
		return nil, fmt.Errorf("blob truncated in offset table")
	}
	bytesRegion := b[hdr:]
	out := make([]string, count)
	prev := uint32(0)
	for i := 0; i < count; i++ {
		lo := le.Uint32(b[4+4*i:])
		hi := le.Uint32(b[4+4*(i+1):])
		if lo != prev || hi < lo || hi > uint32(len(bytesRegion)) {
			return nil, fmt.Errorf("corrupt offsets at entry %d", i)
		}
		out[i] = string(bytesRegion[lo:hi])
		prev = hi
	}
	if int(prev) != len(bytesRegion) {
		return nil, fmt.Errorf("blob has %d trailing bytes", len(bytesRegion)-int(prev))
	}
	return out, nil
}

// decodeMapping parses the mapping section: a string blob of table names
// followed by one i32 base per table.
func decodeMapping(b []byte, numNodes int) ([]convert.TableBase, error) {
	le := binary.LittleEndian
	if len(b) < 8 {
		return nil, fmt.Errorf("mapping shorter than its own header")
	}
	count := int(le.Uint32(b))
	if count > maxStrings {
		return nil, fmt.Errorf("implausible table count %d", count)
	}
	basesLen := 4 * count
	if len(b) < basesLen {
		return nil, fmt.Errorf("mapping truncated before bases")
	}
	names, err := decodeStringBlob(b[:len(b)-basesLen])
	if err != nil {
		return nil, err
	}
	out := make([]convert.TableBase, count)
	basesRaw := b[len(b)-basesLen:]
	for i := range out {
		base := int32(le.Uint32(basesRaw[4*i:]))
		if base < 0 || (int(base) > numNodes) {
			return nil, fmt.Errorf("table %q base %d outside [0,%d]", names[i], base, numNodes)
		}
		out[i] = convert.TableBase{Table: names[i], Base: graph.NodeID(base)}
	}
	return out, nil
}
