package delta

// The differential proof behind the overlay: for randomized mutation
// traces, search over the overlay View must be bit-identical — float
// bits of every score and weight — to search over a from-scratch Build
// of the mutated graph, for all three algorithms, serial and parallel,
// plus Near. The harness also pins the overlay's keyword seeds, its full
// adjacency/prestige arrays, and the Materialize (compaction) output
// against the same reference.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"banks/internal/core"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/prestige"
)

var diffVocab = []string{
	"keyword", "search", "database", "query", "banks", "graph",
	"prestige", "steiner", "tree", "index", "join", "tuple",
}

var diffTables = []string{"paper", "author", "conf"}

// refEdge is one directed edge of the reference model.
type refEdge struct {
	u, v  graph.NodeID
	w     float64
	etype graph.EdgeType
	alive bool
}

// refModel replays a mutation trace against plain slices and rebuilds
// graph+index from scratch with the ordinary Build machinery — the
// independent implementation the overlay is diffed against.
type refModel struct {
	tables []string // per-node relation
	alive  []bool
	edges  []refEdge                        // base order, then insertion order
	terms  map[string]map[graph.NodeID]bool // live (term → node) pairs
}

func (r *refModel) addTermPair(term string, u graph.NodeID) {
	if r.terms[term] == nil {
		r.terms[term] = make(map[graph.NodeID]bool)
	}
	r.terms[term][u] = true
}

func (r *refModel) apply(t *testing.T, op Op) {
	t.Helper()
	switch op.Kind {
	case OpInsertNode:
		r.tables = append(r.tables, op.Table)
		r.alive = append(r.alive, true)
		u := graph.NodeID(len(r.tables) - 1)
		for _, term := range index.Tokenize(op.Text) {
			r.addTermPair(term, u)
		}
	case OpInsertEdge:
		r.edges = append(r.edges, refEdge{u: op.From, v: op.To, w: op.Weight, etype: op.EdgeType, alive: true})
	case OpDeleteNode:
		r.alive[op.Node] = false
		for i := range r.edges {
			if r.edges[i].u == op.Node || r.edges[i].v == op.Node {
				r.edges[i].alive = false
			}
		}
	case OpDeleteEdge:
		for i := range r.edges {
			if r.edges[i].u == op.From && r.edges[i].v == op.To {
				r.edges[i].alive = false
			}
		}
	case OpInsertTerm:
		r.addTermPair(index.Normalize(op.Term), op.Node)
	case OpDeleteTerm:
		delete(r.terms[index.Normalize(op.Term)], op.Node)
	default:
		t.Fatalf("unknown op kind %q", op.Kind)
	}
}

// build rebuilds graph + index from scratch. Tombstoned nodes stay as
// isolated placeholders so IDs are stable; their term pairs remain in
// the index and are filtered at seed time (mirroring the overlay's
// Lookup filter).
func (r *refModel) build(t *testing.T, mode PrestigeMode, popts prestige.Options) (*graph.Graph, *index.Index) {
	t.Helper()
	b := graph.NewBuilder()
	for _, table := range r.tables {
		b.AddNode(table)
	}
	for _, e := range r.edges {
		if !e.alive {
			continue
		}
		if err := b.AddEdge(e.u, e.v, e.w, e.etype); err != nil {
			t.Fatalf("reference AddEdge: %v", err)
		}
	}
	g := b.Build()
	var p []float64
	switch mode {
	case PrestigeUniform:
		p = make([]float64, g.NumNodes())
		for i := range p {
			p[i] = 1
		}
	case PrestigeIndegree:
		p = prestige.Indegree(g)
	default:
		var err error
		p, err = prestige.Compute(g, popts)
		if err != nil {
			t.Fatalf("reference prestige: %v", err)
		}
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	ix := index.New()
	for term, nodes := range r.terms {
		for u := range nodes {
			ix.AddTerm(u, term)
		}
	}
	ix.Freeze(g)
	return g, ix
}

// seeds is the reference keyword-seed list: index lookup minus
// tombstoned nodes (Freeze puts placeholders into relation postings;
// the mutated-graph semantics exclude them).
func (r *refModel) seeds(ix *index.Index, term string) []graph.NodeID {
	var out []graph.NodeID
	for _, u := range ix.Lookup(term) {
		if r.alive[u] {
			out = append(out, u)
		}
	}
	return out
}

// newDiffBase builds a random base world: graph, frozen index, reference
// model mirroring it, and the overlay view at version 0.
func newDiffBase(t *testing.T, rng *rand.Rand, n int, mode PrestigeMode) (*View, *refModel) {
	t.Helper()
	ref := &refModel{terms: make(map[string]map[graph.NodeID]bool)}
	b := graph.NewBuilder()
	ix := index.New()
	for i := 0; i < n; i++ {
		table := diffTables[rng.Intn(len(diffTables))]
		b.AddNode(table)
		ref.tables = append(ref.tables, table)
		ref.alive = append(ref.alive, true)
		for _, term := range pickTerms(rng, 1+rng.Intn(3)) {
			ix.AddTerm(graph.NodeID(i), term)
			ref.addTermPair(term, graph.NodeID(i))
		}
	}
	for u := 0; u < n; u++ {
		deg := rng.Intn(3)
		if rng.Intn(6) == 0 {
			deg += 2 + rng.Intn(5)
		}
		for j := 0; j < deg; j++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			w := 0.25 + rng.Float64()*3
			et := graph.EdgeType(rng.Intn(3))
			if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), w, et); err != nil {
				t.Fatal(err)
			}
			ref.edges = append(ref.edges, refEdge{u: graph.NodeID(u), v: graph.NodeID(v), w: w, etype: et, alive: true})
		}
	}
	g := b.Build()
	popts := prestige.Options{}
	var p []float64
	switch mode {
	case PrestigeUniform:
		p = make([]float64, g.NumNodes())
		for i := range p {
			p[i] = 1
		}
	case PrestigeIndegree:
		p = prestige.Indegree(g)
	default:
		var err error
		p, err = prestige.Compute(g, popts)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	ix.Freeze(g)
	return NewView(g, ix, 0, mode, popts), ref
}

func pickTerms(rng *rand.Rand, k int) []string {
	out := make([]string, 0, k)
	for len(out) < k {
		out = append(out, diffVocab[rng.Intn(len(diffVocab))])
	}
	return out
}

// randomBatch generates a valid mutation batch against the current
// reference state (the generator avoids ops the overlay documents as
// rejected: edges on tombstones, self-loops, out-of-range IDs).
func randomBatch(rng *rand.Rand, ref *refModel) []Op {
	liveNodes := func() []graph.NodeID {
		var out []graph.NodeID
		for u, a := range ref.alive {
			if a {
				out = append(out, graph.NodeID(u))
			}
		}
		return out
	}
	size := 4 + rng.Intn(12)
	var batch []Op
	pending := len(ref.alive) // node count including this batch's inserts
	pendingTomb := map[graph.NodeID]bool{}
	pendingLive := liveNodes()
	for len(batch) < size {
		switch rng.Intn(10) {
		case 0, 1: // insert_node
			batch = append(batch, Op{
				Kind:  OpInsertNode,
				Table: diffTables[rng.Intn(len(diffTables))],
				Text:  strings.Join(pickTerms(rng, 1+rng.Intn(3)), " "),
			})
			pendingLive = append(pendingLive, graph.NodeID(pending))
			pending++
		case 2, 3, 4: // insert_edge
			if len(pendingLive) < 2 {
				continue
			}
			u := pendingLive[rng.Intn(len(pendingLive))]
			v := pendingLive[rng.Intn(len(pendingLive))]
			if u == v || pendingTomb[u] || pendingTomb[v] {
				continue
			}
			batch = append(batch, Op{
				Kind: OpInsertEdge, From: u, To: v,
				Weight:   0.25 + rng.Float64()*3,
				EdgeType: graph.EdgeType(rng.Intn(3)),
			})
		case 5: // delete_node (keep most of the graph alive)
			if len(pendingLive) < 8 {
				continue
			}
			u := pendingLive[rng.Intn(len(pendingLive))]
			if pendingTomb[u] {
				continue
			}
			pendingTomb[u] = true
			batch = append(batch, Op{Kind: OpDeleteNode, Node: u})
		case 6: // delete_edge: aim at a real edge half the time
			var u, v graph.NodeID
			if len(ref.edges) > 0 && rng.Intn(2) == 0 {
				e := ref.edges[rng.Intn(len(ref.edges))]
				u, v = e.u, e.v
			} else if len(pendingLive) >= 2 {
				u = pendingLive[rng.Intn(len(pendingLive))]
				v = pendingLive[rng.Intn(len(pendingLive))]
			} else {
				continue
			}
			batch = append(batch, Op{Kind: OpDeleteEdge, From: u, To: v})
		case 7, 8: // insert_term
			if len(pendingLive) == 0 {
				continue
			}
			u := pendingLive[rng.Intn(len(pendingLive))]
			if pendingTomb[u] {
				continue
			}
			batch = append(batch, Op{Kind: OpInsertTerm, Node: u, Term: diffVocab[rng.Intn(len(diffVocab))]})
		default: // delete_term
			if len(pendingLive) == 0 {
				continue
			}
			u := pendingLive[rng.Intn(len(pendingLive))]
			batch = append(batch, Op{Kind: OpDeleteTerm, Node: u, Term: diffVocab[rng.Intn(len(diffVocab))]})
		}
	}
	return batch
}

// diffSignature renders a result's deterministic content with exact
// float bits; wall-clock fields and WorkersUsed are excluded (the same
// exclusions the core serial/parallel harness makes).
func diffSignature(res *core.Result) string {
	var sb strings.Builder
	s := res.Stats
	fmt.Fprintf(&sb, "explored=%d touched=%d relaxed=%d generated=%d best=%x budget=%v truncated=%v\n",
		s.NodesExplored, s.NodesTouched, s.EdgesRelaxed, s.AnswersGenerated,
		math.Float64bits(s.BestGeneratedScore), s.BudgetExhausted, s.Truncated)
	for i, a := range res.Answers {
		fmt.Fprintf(&sb, "%d: root=%d score=%x edge=%x node=%x nodes=%v kw=%v\n",
			i, a.Root, math.Float64bits(a.Score), math.Float64bits(a.EdgeScore), math.Float64bits(a.NodeScore),
			a.Nodes, a.KeywordNodes)
		for _, e := range a.Edges {
			fmt.Fprintf(&sb, "   %d->%d w=%x t=%d f=%v\n", e.From, e.To, math.Float64bits(e.Weight), e.Type, e.Forward)
		}
		for _, w := range a.PathWeights {
			fmt.Fprintf(&sb, "   pw=%x\n", math.Float64bits(w))
		}
	}
	return sb.String()
}

// assertViewMatchesReference pins the overlay's structure against the
// rebuilt reference: node count, per-node adjacency (float bits),
// per-node prestige (float bits), max prestige, and keyword seeds for
// the whole vocabulary plus relation names.
func assertViewMatchesReference(t *testing.T, v *View, ref *refModel, g2 *graph.Graph, ix2 *index.Index) {
	t.Helper()
	if v.NumNodes() != g2.NumNodes() {
		t.Fatalf("NumNodes: overlay %d, reference %d", v.NumNodes(), g2.NumNodes())
	}
	for u := 0; u < g2.NumNodes(); u++ {
		id := graph.NodeID(u)
		a, b := v.Neighbors(id), g2.Neighbors(id)
		if len(a) != len(b) {
			t.Fatalf("node %d: overlay degree %d, reference %d\noverlay:  %v\nreference: %v", u, len(a), len(b), a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d half %d: overlay %+v, reference %+v", u, i, a[i], b[i])
			}
		}
		if math.Float64bits(v.Prestige(id)) != math.Float64bits(g2.Prestige(id)) {
			t.Fatalf("node %d prestige: overlay %x, reference %x", u,
				math.Float64bits(v.Prestige(id)), math.Float64bits(g2.Prestige(id)))
		}
		if v.Table(id) != g2.Table(id) {
			t.Fatalf("node %d table: overlay %q, reference %q", u, v.Table(id), g2.Table(id))
		}
	}
	if math.Float64bits(v.MaxPrestige()) != math.Float64bits(g2.MaxPrestige()) {
		t.Fatalf("max prestige: overlay %x, reference %x",
			math.Float64bits(v.MaxPrestige()), math.Float64bits(g2.MaxPrestige()))
	}
	for _, term := range append(append([]string{}, diffVocab...), diffTables...) {
		got := v.Lookup(term)
		want := ref.seeds(ix2, term)
		if len(got) != len(want) {
			t.Fatalf("seeds(%q): overlay %v, reference %v", term, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seeds(%q): overlay %v, reference %v", term, got, want)
			}
		}
	}
}

// runQueries executes the acceptance sweep — all three algorithms ×
// workers {0,4} plus Near — over overlay and reference, comparing
// signatures.
func runQueries(t *testing.T, rng *rand.Rand, v *View, ref *refModel, g2 *graph.Graph, ix2 *index.Index) {
	t.Helper()
	for q := 0; q < 3; q++ {
		nk := 2 + rng.Intn(2)
		terms := pickTerms(rng, nk)
		kwOverlay := make([][]graph.NodeID, 0, nk)
		kwRef := make([][]graph.NodeID, 0, nk)
		empty := false
		for _, term := range terms {
			so := v.Lookup(term)
			sr := ref.seeds(ix2, term)
			if len(so) == 0 {
				empty = true
			}
			kwOverlay = append(kwOverlay, so)
			kwRef = append(kwRef, sr)
		}
		if empty {
			continue
		}
		opts := core.Options{K: 5}
		for _, algo := range core.Algos() {
			for _, workers := range []int{0, 4} {
				o := opts
				o.Workers = workers
				ro, err := core.Search(context.Background(), v, algo, kwOverlay, o)
				if err != nil {
					t.Fatalf("%s overlay search: %v", algo, err)
				}
				rr, err := core.Search(context.Background(), g2, algo, kwRef, o)
				if err != nil {
					t.Fatalf("%s reference search: %v", algo, err)
				}
				if so, sr := diffSignature(ro), diffSignature(rr); so != sr {
					t.Fatalf("%s workers=%d terms=%v diverged:\noverlay:\n%s\nreference:\n%s", algo, workers, terms, so, sr)
				}
			}
		}
		no, _, err := core.Near(context.Background(), v, kwOverlay, opts)
		if err != nil {
			t.Fatalf("overlay near: %v", err)
		}
		nr, _, err := core.Near(context.Background(), g2, kwRef, opts)
		if err != nil {
			t.Fatalf("reference near: %v", err)
		}
		if len(no) != len(nr) {
			t.Fatalf("near length: overlay %d, reference %d", len(no), len(nr))
		}
		for i := range no {
			if no[i].Node != nr[i].Node || math.Float64bits(no[i].Activation) != math.Float64bits(nr[i].Activation) {
				t.Fatalf("near %d: overlay %+v, reference %+v", i, no[i], nr[i])
			}
		}
	}
}

func TestDifferentialOverlayVsRebuild(t *testing.T) {
	cases := []struct {
		seed int64
		mode PrestigeMode
	}{
		{seed: 1, mode: PrestigeUniform},
		{seed: 2, mode: PrestigeIndegree},
		{seed: 3, mode: PrestigeRandomWalk},
		{seed: 4, mode: PrestigeUniform},
		{seed: 5, mode: PrestigeRandomWalk},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/mode=%d", tc.seed, tc.mode), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(tc.seed))
			v, ref := newDiffBase(t, rng, 40+rng.Intn(40), tc.mode)
			for batchNo := 0; batchNo < 5; batchNo++ {
				batch := randomBatch(rng, ref)
				nv, _, err := v.Apply(batch)
				if err != nil {
					t.Fatalf("batch %d: %v", batchNo, err)
				}
				v = nv
				for _, op := range batch {
					ref.apply(t, op)
				}
				g2, ix2 := ref.build(t, tc.mode, prestige.Options{})
				assertViewMatchesReference(t, v, ref, g2, ix2)
				runQueries(t, rng, v, ref, g2, ix2)
			}

			// Compaction: the materialized graph must be structurally
			// identical to the reference rebuild, and the compacted
			// index must agree with the overlay's Lookup.
			g2, _ := ref.build(t, tc.mode, prestige.Options{})
			mg, mix, err := v.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			if mg.NumNodes() != g2.NumNodes() || mg.NumEdges() != g2.NumEdges() {
				t.Fatalf("materialized %d nodes/%d edges, reference %d/%d",
					mg.NumNodes(), mg.NumEdges(), g2.NumNodes(), g2.NumEdges())
			}
			for u := 0; u < g2.NumNodes(); u++ {
				id := graph.NodeID(u)
				a, b := mg.Neighbors(id), g2.Neighbors(id)
				if len(a) != len(b) {
					t.Fatalf("materialized node %d degree %d, reference %d", u, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("materialized node %d half %d: %+v vs %+v", u, i, a[i], b[i])
					}
				}
				if math.Float64bits(mg.Prestige(id)) != math.Float64bits(g2.Prestige(id)) {
					t.Fatalf("materialized node %d prestige mismatch", u)
				}
			}
			for _, term := range append(append([]string{}, diffVocab...), diffTables...) {
				got := mix.Lookup(term)
				want := v.Lookup(term)
				if len(got) != len(want) {
					t.Fatalf("compacted Lookup(%q)=%v, overlay %v", term, got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("compacted Lookup(%q)=%v, overlay %v", term, got, want)
					}
				}
			}
		})
	}
}
