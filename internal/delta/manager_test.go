package delta

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"banks/internal/core"
	"banks/internal/engine"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/prestige"
)

// newManagerWorld builds a small base graph + index, an engine over it,
// and a Manager (compaction enabled iff snapshotPath is non-empty).
func newManagerWorld(t *testing.T, snapshotPath string) (*Manager, *engine.Engine) {
	t.Helper()
	return newManagerWorldLog(t, snapshotPath, nil)
}

// newManagerWorldLog is newManagerWorld with a write-ahead log wired in.
func newManagerWorldLog(t *testing.T, snapshotPath string, log LogAppender) (*Manager, *engine.Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	b := graph.NewBuilder()
	ix := index.New()
	const n = 60
	for i := 0; i < n; i++ {
		b.AddNode(diffTables[i%len(diffTables)])
		for _, term := range pickTerms(rng, 2) {
			ix.AddTerm(graph.NodeID(i), term)
		}
	}
	for u := 0; u < n; u++ {
		for j := 0; j < 2; j++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v), 1+rng.Float64(), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.Build()
	p := make([]float64, g.NumNodes())
	for i := range p {
		p[i] = 1
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	ix.Freeze(g)

	eng, err := engine.New(g, ix, engine.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		Engine:       eng,
		Graph:        g,
		Index:        ix,
		SnapshotPath: snapshotPath,
		Mode:         PrestigeUniform,
		Log:          log,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, eng
}

// TestMutateWhileSearchHammer is the race-detector acceptance test:
// writers apply mutation batches (each one an atomic source swap) while
// eight reader goroutines stream queries through the engine. Every query
// must succeed against whichever source it bound — an answer referencing
// a node the bound generation does not have would fail inside core with
// an out-of-range panic, and any unsynchronized access trips -race.
func TestMutateWhileSearchHammer(t *testing.T) {
	m, eng := newManagerWorld(t, "")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	var queries, batches atomic.Uint64
	errs := make(chan error, 16)

	// One writer: randomized valid batches, as fast as Apply allows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for ctx.Err() == nil {
			v := m.View()
			var ops []Op
			for i := 0; i < 3; i++ {
				switch rng.Intn(3) {
				case 0:
					ops = append(ops, Op{Kind: OpInsertNode, Table: diffTables[rng.Intn(len(diffTables))],
						Text: diffVocab[rng.Intn(len(diffVocab))]})
				case 1:
					u := graph.NodeID(rng.Intn(v.NumNodes()))
					w := graph.NodeID(rng.Intn(v.NumNodes()))
					if u == w || v.Deleted(u) || v.Deleted(w) {
						continue
					}
					ops = append(ops, Op{Kind: OpInsertEdge, From: u, To: w, Weight: 1 + rng.Float64()})
				default:
					u := graph.NodeID(rng.Intn(v.NumNodes()))
					if v.Deleted(u) {
						continue
					}
					ops = append(ops, Op{Kind: OpInsertTerm, Node: u, Term: diffVocab[rng.Intn(len(diffVocab))]})
				}
			}
			if len(ops) == 0 {
				continue
			}
			if _, err := m.Apply(ops); err != nil {
				select {
				case errs <- err:
				default:
				}
				return
			}
			batches.Add(1)
		}
	}()

	// Eight readers hammering all three algorithms.
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			algos := core.Algos()
			for ctx.Err() == nil {
				q := engine.Query{
					Terms: pickTerms(rng, 2),
					Algo:  algos[rng.Intn(len(algos))],
					Opts:  core.Options{K: 3},
				}
				res, err := eng.Search(ctx, q)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					select {
					case errs <- err:
					default:
					}
					return
				}
				_ = res
				queries.Add(1)
			}
		}(int64(100 + r))
	}

	time.Sleep(600 * time.Millisecond)
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("hammer error: %v", err)
	}
	if queries.Load() == 0 || batches.Load() == 0 {
		t.Fatalf("hammer made no progress: %d queries, %d batches", queries.Load(), batches.Load())
	}
	t.Logf("hammer: %d queries over %d mutation batches", queries.Load(), batches.Load())
}

// TestCompactUnderLoad proves the hot-swap drops zero in-flight queries:
// readers stream queries continuously while mutations accumulate and
// Compact runs repeatedly. Every query must complete without error, and
// each compaction must advance the generation and reset the delta.
func TestCompactUnderLoad(t *testing.T) {
	dir := t.TempDir()
	m, eng := newManagerWorld(t, filepath.Join(dir, "live.banksnap"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	var queries atomic.Uint64
	errs := make(chan error, 16)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				q := engine.Query{Terms: pickTerms(rng, 2), Algo: core.AlgoBidirectional, Opts: core.Options{K: 3}}
				if _, err := eng.Search(ctx, q); err != nil {
					if ctx.Err() != nil {
						return
					}
					select {
					case errs <- err:
					default:
					}
					return
				}
				queries.Add(1)
			}
		}(int64(200 + r))
	}

	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 3; round++ {
		// Make sure readers are actively querying before the swap so the
		// compaction genuinely races live load.
		qBefore := queries.Load()
		for deadline := time.Now().Add(5 * time.Second); queries.Load() == qBefore && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}
		for b := 0; b < 4; b++ {
			ops := []Op{
				{Kind: OpInsertNode, Table: "paper", Text: "compaction survivor " + diffVocab[rng.Intn(len(diffVocab))]},
			}
			if _, err := m.Apply(ops); err != nil {
				t.Fatalf("round %d apply: %v", round, err)
			}
		}
		before := m.Stats()
		cres, err := m.Compact(ctx)
		if err != nil {
			t.Fatalf("round %d compact: %v", round, err)
		}
		gen := cres.Generation
		after := m.Stats()
		if gen != before.Generation+1 || after.Generation != gen {
			t.Fatalf("round %d: generation %d -> %d (compact returned %d)", round, before.Generation, after.Generation, gen)
		}
		if after.DeltaVersion != 0 || after.DeltaNodes != 0 || after.Tombstones != 0 {
			t.Fatalf("round %d: delta not reset after compaction: %+v", round, after)
		}
		if want := m.CompactPath(gen); cres.Path != want {
			t.Fatalf("round %d: compacted to %q, want %q", round, cres.Path, want)
		}
	}

	// Compaction is fast on this small graph; let the readers overlap with
	// at least a little steady-state load before stopping.
	deadline := time.Now().Add(5 * time.Second)
	for queries.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("query failed during compaction: %v", err)
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed")
	}
	stats := m.Stats()
	if stats.CompactionsTotal != 3 {
		t.Fatalf("CompactionsTotal = %d, want 3", stats.CompactionsTotal)
	}
	if stats.LastCompactionSeconds <= 0 || stats.CompactionSecondsSum < stats.LastCompactionSeconds {
		t.Fatalf("compaction duration accounting off: %+v", stats)
	}
	t.Logf("compaction under load: %d queries, 3 generations", queries.Load())
}

// TestCompactPreservesSearch pins that a compaction is semantically
// invisible: the same query returns bit-identical answers immediately
// before and after the swap (modulo the result cache, which is keyed by
// generation and so cannot serve stale state).
func TestCompactPreservesSearch(t *testing.T) {
	dir := t.TempDir()
	m, eng := newManagerWorld(t, filepath.Join(dir, "live.banksnap"))
	if _, err := m.Apply([]Op{
		{Kind: OpInsertNode, Table: "paper", Text: "steiner tree search"},
		{Kind: OpInsertEdge, From: 0, To: 60, Weight: 1.5},
		{Kind: OpDeleteNode, Node: 5},
	}); err != nil {
		t.Fatal(err)
	}
	q := engine.Query{Terms: []string{"steiner", "search"}, Algo: core.AlgoBidirectional, Opts: core.Options{K: 5}}
	before, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if so, sa := diffSignature(before), diffSignature(after); so != sa {
		t.Fatalf("compaction changed answers:\nbefore:\n%s\nafter:\n%s", so, sa)
	}
}

// TestCompactDisabled pins the error path when no snapshot path is set.
func TestCompactDisabled(t *testing.T) {
	m, _ := newManagerWorld(t, "")
	if _, err := m.Compact(context.Background()); err == nil {
		t.Fatal("Compact succeeded without a snapshot path")
	}
	if p := m.CompactPath(1); p != "" {
		t.Fatalf("CompactPath = %q, want empty", p)
	}
}

// TestPrestigeRecomputeAcrossApply pins that RandomWalk prestige is
// recomputed over the mutated graph, not frozen at base values: adding
// in-edges to a node must change its prestige.
func TestPrestigeRecomputeAcrossApply(t *testing.T) {
	b := graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddNode("paper")
	}
	for i := 1; i < 6; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(0), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	p, err := prestige.Compute(g, prestige.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetPrestige(p); err != nil {
		t.Fatal(err)
	}
	ix := index.New()
	ix.AddTerm(0, "hub")
	ix.Freeze(g)

	v := NewView(g, ix, 0, PrestigeRandomWalk, prestige.Options{})
	nv, _, err := v.Apply([]Op{
		{Kind: OpInsertNode, Table: "paper", Text: "newcomer"},
		{Kind: OpInsertEdge, From: 0, To: 6, Weight: 1},
		{Kind: OpInsertEdge, From: 1, To: 6, Weight: 1},
		{Kind: OpInsertEdge, From: 2, To: 6, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if nv.Prestige(6) <= 0 {
		t.Fatalf("appended node prestige = %v, want > 0 under random walk", nv.Prestige(6))
	}
	if nv.Prestige(0) == g.Prestige(0) && nv.Prestige(1) == g.Prestige(1) {
		t.Fatal("prestige unchanged after mutation; expected recompute over the mutated graph")
	}
}
