package delta

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"banks/internal/convert"
	"banks/internal/engine"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/prestige"
	"banks/internal/store"
)

// Config wires a Manager to the data it mutates and the engine it swaps.
type Config struct {
	// Engine is the query engine whose Source the manager swaps on every
	// mutation batch and compaction.
	Engine *engine.Engine
	// Graph and Index are the current base (typically aliasing an open
	// snapshot's mapping).
	Graph *graph.Graph
	Index *index.Index
	// Mapping and EdgeTypes are carried through to compacted snapshots
	// verbatim (node IDs are stable, so the base mapping stays valid for
	// base nodes; appended nodes fall outside it and get synthetic
	// labels from the serving layer).
	Mapping   *convert.Mapping
	EdgeTypes *convert.EdgeTypes
	// Generation is the base snapshot's generation (0 for a fresh build
	// or a pre-generation snapshot file).
	Generation uint64
	// SnapshotPath, when non-empty, enables compaction to disk: the
	// compactor writes generation N to SnapshotPath + ".genN" via the
	// snapshot writer's temp+rename path and re-opens it as the new
	// base. Empty disables Compact.
	SnapshotPath string
	// Mode and PrestigeOptions must match how the base's prestige was
	// computed.
	Mode            PrestigeMode
	PrestigeOptions prestige.Options
}

// Stats is a point-in-time snapshot of the manager's state and activity.
type Stats struct {
	// Generation is the current base snapshot generation.
	Generation uint64
	// DeltaVersion counts mutation batches applied since the base.
	DeltaVersion uint64
	// DeltaNodes / DeltaEdges are live overlay inserts; Tombstones
	// counts deleted nodes.
	DeltaNodes, DeltaEdges, Tombstones int
	// MutationsTotal counts ops ever applied (cumulative, survives
	// compaction). MutationBatches counts accepted batches.
	MutationsTotal, MutationBatches uint64
	// CompactionsTotal counts completed compactions;
	// LastCompactionSeconds is the duration of the latest one and
	// CompactionSecondsSum accumulates all of them (for a Prometheus
	// summary pair with CompactionsTotal).
	CompactionsTotal      uint64
	LastCompactionSeconds float64
	CompactionSecondsSum  float64
}

// Manager owns the live-mutation state of one serving process: the
// current overlay View, the engine Source derived from it, and the
// compaction lifecycle. All mutating entry points serialize on one
// mutex; queries never take it (they read the engine's atomic Source).
type Manager struct {
	cfg Config

	mu   sync.Mutex
	view *View
	// owned is the snapshot backing the current base iff the manager
	// opened it (a compacted generation). The process-initial snapshot
	// is never owned — closing it would unmap memory the rest of the
	// process (DB handles, explain paths) may still reference.
	owned *store.Snapshot

	mutationsTotal   atomic.Uint64
	mutationBatches  atomic.Uint64
	compactionsTotal atomic.Uint64
	lastCompactBits  atomic.Uint64 // float64 bits of the last duration
	compactSumBits   atomic.Uint64 // float64 bits of the duration sum
}

// NewManager builds a Manager over the engine's initial base state and
// installs the version-0 source (generation stamping begins immediately).
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Engine == nil || cfg.Graph == nil || cfg.Index == nil {
		return nil, fmt.Errorf("delta: manager requires engine, graph and index")
	}
	m := &Manager{
		cfg:  cfg,
		view: NewView(cfg.Graph, cfg.Index, cfg.Generation, cfg.Mode, cfg.PrestigeOptions),
	}
	src, err := engine.NewSource(m.view, m.view.Lookup, cfg.Generation, 0)
	if err != nil {
		return nil, err
	}
	cfg.Engine.Swap(src)
	return m, nil
}

// View returns the current overlay view (for tests and label lookups).
func (m *Manager) View() *View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view
}

// Apply validates and applies one mutation batch, swaps the resulting
// view into the engine, and returns the NodeIDs assigned to the batch's
// insert_node ops. Queries in flight keep their pre-batch view; queries
// arriving after Apply returns see the mutations.
func (m *Manager) Apply(batch []Op) ([]graph.NodeID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nv, assigned, err := m.view.Apply(batch)
	if err != nil {
		return nil, err
	}
	src, err := engine.NewSource(nv, nv.Lookup, nv.generation, nv.version)
	if err != nil {
		return nil, err
	}
	m.cfg.Engine.Swap(src)
	m.view = nv
	m.mutationsTotal.Add(uint64(len(batch)))
	m.mutationBatches.Add(1)
	return assigned, nil
}

// CompactPath returns the snapshot path compaction would write for the
// given generation ("" when compaction is disabled).
func (m *Manager) CompactPath(generation uint64) string {
	if m.cfg.SnapshotPath == "" {
		return ""
	}
	return fmt.Sprintf("%s.gen%d", m.cfg.SnapshotPath, generation)
}

// Compact materializes the current overlay into a generation-N+1
// snapshot file, re-opens it, and hot-swaps it in as the new base with
// zero dropped queries: the engine source swap is atomic (new queries
// bind the new base immediately), then Quiesce waits for every query
// bound to the old state to finish before the previous manager-owned
// mapping is released. Mutations are blocked for the duration; queries
// are not. Returns the new generation and the snapshot path.
func (m *Manager) Compact(ctx context.Context) (uint64, string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.SnapshotPath == "" {
		return 0, "", fmt.Errorf("delta: compaction disabled (no snapshot path)")
	}
	start := time.Now()

	g, ix, err := m.view.Materialize()
	if err != nil {
		return 0, "", err
	}
	newGen := m.view.generation + 1
	path := m.CompactPath(newGen)
	if _, err := store.WriteExtrasFile(path, g, ix, m.cfg.Mapping, m.cfg.EdgeTypes, store.Extras{Generation: newGen}); err != nil {
		return 0, "", fmt.Errorf("delta: write generation %d: %w", newGen, err)
	}
	snap, err := store.Open(path, store.Options{})
	if err != nil {
		return 0, "", fmt.Errorf("delta: reopen generation %d: %w", newGen, err)
	}
	if snap.Generation != newGen {
		snap.Close()
		return 0, "", fmt.Errorf("delta: generation %d snapshot reads back as %d", newGen, snap.Generation)
	}

	nv := NewView(snap.Graph, snap.Index, newGen, m.cfg.Mode, m.cfg.PrestigeOptions)
	src, err := engine.NewSource(nv, nv.Lookup, newGen, 0)
	if err != nil {
		snap.Close()
		return 0, "", err
	}
	m.cfg.Engine.Swap(src)

	// In-flight protection: a query binds its source while holding a
	// pool slot, so one observed moment of full idleness means no query
	// can still be reading the replaced state. Only then is the previous
	// manager-owned mapping released. The process-initial snapshot is
	// left mapped for the life of the process (other components hold
	// references into it).
	if err := m.cfg.Engine.Quiesce(ctx); err != nil {
		// The swap already happened and is valid; the old mapping just
		// cannot be released yet. Leak it rather than risk a read fault.
		m.owned = nil
	} else if m.owned != nil {
		m.owned.Close()
	}
	m.owned = snap
	m.view = nv

	dur := time.Since(start).Seconds()
	m.compactionsTotal.Add(1)
	m.lastCompactBits.Store(math.Float64bits(dur))
	for {
		old := m.compactSumBits.Load()
		if m.compactSumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+dur)) {
			break
		}
	}
	return newGen, path, nil
}

// Stats samples the manager's state. The overlay gauges reflect the
// current view; counters are cumulative across compactions.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	v := m.view
	m.mu.Unlock()
	return Stats{
		Generation:            v.generation,
		DeltaVersion:          v.version,
		DeltaNodes:            v.DeltaNodes(),
		DeltaEdges:            v.DeltaEdges(),
		Tombstones:            v.Tombstones(),
		MutationsTotal:        m.mutationsTotal.Load(),
		MutationBatches:       m.mutationBatches.Load(),
		CompactionsTotal:      m.compactionsTotal.Load(),
		LastCompactionSeconds: math.Float64frombits(m.lastCompactBits.Load()),
		CompactionSecondsSum:  math.Float64frombits(m.compactSumBits.Load()),
	}
}
