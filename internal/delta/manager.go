package delta

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"banks/internal/convert"
	"banks/internal/engine"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/prestige"
	"banks/internal/store"
)

// LogAppender is the write-ahead log seam. The concrete implementation
// lives in internal/wal (which imports this package for the Op type);
// the interface keeps the dependency one-way. Append must make the
// record durable per its configured policy before returning — Apply
// acknowledges a batch only after Append succeeds. Reset empties the
// log once a compaction has made its records redundant.
type LogAppender interface {
	// Append logs one batch stamped (generation, version) and returns
	// the log offset of its end — the read-your-writes token. On error
	// the log must be unchanged (or refusing all further appends):
	// Apply translates an Append error into a rejected, unapplied batch.
	Append(generation, version uint64, ops []Op) (int64, error)
	// Reset empties the log (post-compaction truncation).
	Reset() error
}

// ApplyResult reports one acknowledged mutation batch: the IDs assigned
// to its insert_node ops, the logical state it produced, and where its
// durability record landed.
type ApplyResult struct {
	// Assigned are the NodeIDs of the batch's insert_node ops, in op
	// order (nil when the batch inserted no nodes).
	Assigned []graph.NodeID
	// Generation and DeltaVersion identify the state the batch produced:
	// any later query observing this (generation, delta_version) or
	// newer sees the batch (read-your-writes).
	Generation   uint64
	DeltaVersion uint64
	// WALOffset is the write-ahead-log offset of the batch's record end;
	// -1 when the manager runs without a WAL (ack ≠ durable).
	WALOffset int64
	// DeltaNodes/DeltaEdges/Tombstones are the overlay gauges after the
	// batch.
	DeltaNodes, DeltaEdges, Tombstones int
}

// CompactResult reports one completed compaction.
type CompactResult struct {
	// Generation is the new base generation; Path its snapshot file.
	Generation uint64
	Path       string
	// WALReset reports whether the write-ahead log was truncated (false
	// when no WAL is configured, or when truncation failed — correctness
	// holds either way, replay skips records older than the base).
	WALReset bool
}

// Config wires a Manager to the data it mutates and the engine it swaps.
type Config struct {
	// Engine is the query engine whose Source the manager swaps on every
	// mutation batch and compaction.
	Engine *engine.Engine
	// Graph and Index are the current base (typically aliasing an open
	// snapshot's mapping).
	Graph *graph.Graph
	Index *index.Index
	// Mapping and EdgeTypes are carried through to compacted snapshots
	// verbatim (node IDs are stable, so the base mapping stays valid for
	// base nodes; appended nodes fall outside it and get synthetic
	// labels from the serving layer).
	Mapping   *convert.Mapping
	EdgeTypes *convert.EdgeTypes
	// Generation is the base snapshot's generation (0 for a fresh build
	// or a pre-generation snapshot file).
	Generation uint64
	// SnapshotPath, when non-empty, enables compaction to disk: the
	// compactor writes generation N to SnapshotPath + ".genN" via the
	// snapshot writer's temp+rename path and re-opens it as the new
	// base. Empty disables Compact.
	SnapshotPath string
	// Mode and PrestigeOptions must match how the base's prestige was
	// computed.
	Mode            PrestigeMode
	PrestigeOptions prestige.Options
	// Log, when non-nil, is the write-ahead log every batch is appended
	// to before acknowledgment. Nil means mutations are memory-only
	// between compactions (the pre-WAL behavior).
	Log LogAppender
}

// Stats is a point-in-time snapshot of the manager's state and activity.
type Stats struct {
	// Generation is the current base snapshot generation.
	Generation uint64
	// DeltaVersion counts mutation batches applied since the base.
	DeltaVersion uint64
	// DeltaNodes / DeltaEdges are live overlay inserts; Tombstones
	// counts deleted nodes.
	DeltaNodes, DeltaEdges, Tombstones int
	// MutationsTotal counts ops ever applied (cumulative, survives
	// compaction). MutationBatches counts accepted batches. Batches the
	// WAL refused are counted by neither — they were never applied.
	MutationsTotal, MutationBatches uint64
	// OpsSinceBase counts ops applied since the current base generation
	// was established (reset by compaction) — the -compact-after-ops
	// trigger reads it.
	OpsSinceBase uint64
	// CompactionsTotal counts completed compactions;
	// LastCompactionSeconds is the duration of the latest one and
	// CompactionSecondsSum accumulates all of them (for a Prometheus
	// summary pair with CompactionsTotal).
	CompactionsTotal      uint64
	LastCompactionSeconds float64
	CompactionSecondsSum  float64
}

// Manager owns the live-mutation state of one serving process: the
// current overlay View, the engine Source derived from it, and the
// compaction lifecycle. All mutating entry points serialize on one
// mutex; queries never take it (they read the engine's atomic Source).
type Manager struct {
	cfg Config

	mu   sync.Mutex
	view *View
	// opsSinceBase counts ops applied onto the current base generation
	// (guarded by mu; reset by Compact).
	opsSinceBase uint64
	// owned is the snapshot backing the current base iff the manager
	// opened it (a compacted generation). The process-initial snapshot
	// is never owned — closing it would unmap memory the rest of the
	// process (DB handles, explain paths) may still reference.
	owned *store.Snapshot

	mutationsTotal   atomic.Uint64
	mutationBatches  atomic.Uint64
	compactionsTotal atomic.Uint64
	lastCompactBits  atomic.Uint64 // float64 bits of the last duration
	compactSumBits   atomic.Uint64 // float64 bits of the duration sum
}

// NewManager builds a Manager over the engine's initial base state and
// installs the version-0 source (generation stamping begins immediately).
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Engine == nil || cfg.Graph == nil || cfg.Index == nil {
		return nil, fmt.Errorf("delta: manager requires engine, graph and index")
	}
	m := &Manager{
		cfg:  cfg,
		view: NewView(cfg.Graph, cfg.Index, cfg.Generation, cfg.Mode, cfg.PrestigeOptions),
	}
	src, err := engine.NewSource(m.view, m.view.Lookup, cfg.Generation, 0)
	if err != nil {
		return nil, err
	}
	cfg.Engine.Swap(src)
	return m, nil
}

// View returns the current overlay view (for tests and label lookups).
func (m *Manager) View() *View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.view
}

// Apply validates and applies one mutation batch, appends it to the
// write-ahead log (when configured), swaps the resulting view into the
// engine, and reports the result. Queries in flight keep their
// pre-batch view; queries arriving after Apply returns see the
// mutations.
//
// Ordering is the durability and atomicity contract: the batch is
// validated and the new view + source are fully built first, the WAL
// append is the last fallible step, and only after it succeeds does the
// swap make the batch visible and the counters move. A failed append
// therefore leaves the in-memory overlay, the serving source, and every
// counter exactly as they were — the client's error means "not applied,
// not durable", with no third state.
func (m *Manager) Apply(batch []Op) (*ApplyResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nv, assigned, err := m.view.Apply(batch)
	if err != nil {
		return nil, err
	}
	src, err := engine.NewSource(nv, nv.Lookup, nv.generation, nv.version)
	if err != nil {
		return nil, err
	}
	walOffset := int64(-1)
	if m.cfg.Log != nil {
		walOffset, err = m.cfg.Log.Append(nv.generation, nv.version, batch)
		if err != nil {
			return nil, &WALError{Err: err}
		}
	}
	m.cfg.Engine.Swap(src)
	m.view = nv
	m.opsSinceBase += uint64(len(batch))
	m.mutationsTotal.Add(uint64(len(batch)))
	m.mutationBatches.Add(1)
	return &ApplyResult{
		Assigned:     assigned,
		Generation:   nv.generation,
		DeltaVersion: nv.version,
		WALOffset:    walOffset,
		DeltaNodes:   nv.DeltaNodes(),
		DeltaEdges:   nv.DeltaEdges(),
		Tombstones:   nv.Tombstones(),
	}, nil
}

// WALError marks a batch the write-ahead log refused: the batch was
// valid but could not be made durable, so it was not applied. Callers
// that distinguish client errors (invalid batch) from durability
// failures unwrap to this type.
type WALError struct{ Err error }

func (e *WALError) Error() string {
	return fmt.Sprintf("delta: batch not applied, write-ahead log append failed: %v", e.Err)
}

func (e *WALError) Unwrap() error { return e.Err }

// Replay applies one recovered WAL record during open, with the
// idempotence rules that make recovery safe against every crash point:
//
//   - generation < base: the record predates the base snapshot (the
//     crash hit between compaction's rename and the WAL truncate) — its
//     effects are already in the base; skip.
//   - generation > base: the log claims a future base — the snapshot
//     and log files do not belong together; refuse.
//   - version ≤ current: duplicate record; skip.
//   - version > current+1: a record between them is missing; refuse
//     (recovering around a hole would silently reorder history).
//
// Replayed batches do not re-append to the WAL (they are already in
// it). applied reports whether the record advanced the state.
func (m *Manager) Replay(generation, version uint64, ops []Op) (applied bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.view
	switch {
	case generation < cur.generation:
		return false, nil
	case generation > cur.generation:
		return false, fmt.Errorf("delta: replay: record generation %d is ahead of base generation %d (log does not match snapshot)", generation, cur.generation)
	case version <= cur.version:
		return false, nil
	case version != cur.version+1:
		return false, fmt.Errorf("delta: replay: version jumps %d→%d, a record is missing", cur.version, version)
	}
	nv, _, err := cur.Apply(ops)
	if err != nil {
		return false, fmt.Errorf("delta: replay version %d: %w", version, err)
	}
	src, err := engine.NewSource(nv, nv.Lookup, nv.generation, nv.version)
	if err != nil {
		return false, err
	}
	m.cfg.Engine.Swap(src)
	m.view = nv
	m.opsSinceBase += uint64(len(ops))
	m.mutationsTotal.Add(uint64(len(ops)))
	m.mutationBatches.Add(1)
	return true, nil
}

// ReplayLogged is the replication ingest seam: a follower applies one
// record shipped from its primary's log under Replay's idempotence
// rules, and — unlike Replay, whose records are already in the local
// log — appends the record to this process's own write-ahead log
// before making it visible. The append reuses the record's original
// (generation, version) stamp, and the wal package's frame encoding is
// canonical, so the follower's log file stays a byte-identical copy of
// the primary's at identical offsets — which is what makes wal_offset
// a globally comparable replication position. Skipped records
// (duplicates, pre-base generations) are not re-appended. offset is
// the local log end after the record; -1 when the record was skipped
// or no log is configured.
func (m *Manager) ReplayLogged(generation, version uint64, ops []Op) (applied bool, offset int64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.view
	switch {
	case generation < cur.generation:
		return false, -1, nil
	case generation > cur.generation:
		return false, -1, fmt.Errorf("delta: replicate: record generation %d is ahead of base generation %d (follower must bootstrap a newer base)", generation, cur.generation)
	case version <= cur.version:
		return false, -1, nil
	case version != cur.version+1:
		return false, -1, fmt.Errorf("delta: replicate: version jumps %d→%d, a record is missing", cur.version, version)
	}
	nv, _, err := cur.Apply(ops)
	if err != nil {
		return false, -1, fmt.Errorf("delta: replicate version %d: %w", version, err)
	}
	src, err := engine.NewSource(nv, nv.Lookup, nv.generation, nv.version)
	if err != nil {
		return false, -1, err
	}
	offset = -1
	if m.cfg.Log != nil {
		offset, err = m.cfg.Log.Append(generation, version, ops)
		if err != nil {
			return false, -1, &WALError{Err: err}
		}
	}
	m.cfg.Engine.Swap(src)
	m.view = nv
	m.opsSinceBase += uint64(len(ops))
	m.mutationsTotal.Add(uint64(len(ops)))
	m.mutationBatches.Add(1)
	return true, offset, nil
}

// AdoptBase replaces the manager's base with an externally produced
// snapshot — a follower crossing its primary's compaction boundary
// adopts the fetched generation file instead of materializing its own.
// The overlay is discarded (the new base contains its effects by
// construction: it is the primary's compaction of the same record
// sequence the follower applied), the local write-ahead log is
// truncated exactly as after a local compaction, and the engine
// hot-swaps with Compact's zero-dropped-queries discipline. The path
// must name a snapshot whose generation is strictly ahead of the
// current base.
func (m *Manager) AdoptBase(ctx context.Context, path string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap, err := store.Open(path, store.Options{})
	if err != nil {
		return 0, fmt.Errorf("delta: open adopted base %s: %w", path, err)
	}
	if snap.Generation <= m.view.generation {
		gen := snap.Generation
		snap.Close()
		return 0, fmt.Errorf("delta: adopted base generation %d is not ahead of current %d", gen, m.view.generation)
	}
	nv := NewView(snap.Graph, snap.Index, snap.Generation, m.cfg.Mode, m.cfg.PrestigeOptions)
	src, err := engine.NewSource(nv, nv.Lookup, snap.Generation, 0)
	if err != nil {
		snap.Close()
		return 0, err
	}
	// Same tolerance as Compact: a failed truncation leaves stale
	// records that replay will skip by generation.
	if m.cfg.Log != nil {
		_ = m.cfg.Log.Reset()
	}
	m.cfg.Engine.Swap(src)
	if err := m.cfg.Engine.Quiesce(ctx); err != nil {
		// Swap already happened and is valid; leak the old mapping rather
		// than risk a read fault under an unfinished query.
		m.owned = nil
	} else if m.owned != nil {
		m.owned.Close()
	}
	m.owned = snap
	m.view = nv
	m.opsSinceBase = 0
	return snap.Generation, nil
}

// CompactPath returns the snapshot path compaction would write for the
// given generation ("" when compaction is disabled).
func (m *Manager) CompactPath(generation uint64) string {
	if m.cfg.SnapshotPath == "" {
		return ""
	}
	return fmt.Sprintf("%s.gen%d", m.cfg.SnapshotPath, generation)
}

// BasePath returns the snapshot file backing the current base: the
// compacted generation file once any compaction (or adoption) has run,
// else the process-initial snapshot path. Empty when the manager runs
// without a snapshot path — such an instance cannot bootstrap
// followers.
func (m *Manager) BasePath() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.view.generation == 0 {
		return m.cfg.SnapshotPath
	}
	return m.CompactPath(m.view.generation)
}

// Compact materializes the current overlay into a generation-N+1
// snapshot file, re-opens it, and hot-swaps it in as the new base with
// zero dropped queries: the engine source swap is atomic (new queries
// bind the new base immediately), then Quiesce waits for every query
// bound to the old state to finish before the previous manager-owned
// mapping is released. Mutations are blocked for the duration; queries
// are not.
//
// The durability order is: new generation written and fsync'd (the
// snapshot writer syncs before its rename), then verified by re-open,
// and only then is the write-ahead log truncated. A crash anywhere in
// between recovers correctly — before the rename the old base + full
// log replay; after the rename but before the truncate the new base
// skips the log's now-stale records by generation.
func (m *Manager) Compact(ctx context.Context) (*CompactResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.SnapshotPath == "" {
		return nil, fmt.Errorf("delta: compaction disabled (no snapshot path)")
	}
	start := time.Now()

	g, ix, err := m.view.Materialize()
	if err != nil {
		return nil, err
	}
	newGen := m.view.generation + 1
	path := m.CompactPath(newGen)
	if _, err := store.WriteExtrasFile(path, g, ix, m.cfg.Mapping, m.cfg.EdgeTypes, store.Extras{Generation: newGen}); err != nil {
		return nil, fmt.Errorf("delta: write generation %d: %w", newGen, err)
	}
	snap, err := store.Open(path, store.Options{})
	if err != nil {
		return nil, fmt.Errorf("delta: reopen generation %d: %w", newGen, err)
	}
	if snap.Generation != newGen {
		snap.Close()
		return nil, fmt.Errorf("delta: generation %d snapshot reads back as %d", newGen, snap.Generation)
	}

	nv := NewView(snap.Graph, snap.Index, newGen, m.cfg.Mode, m.cfg.PrestigeOptions)
	src, err := engine.NewSource(nv, nv.Lookup, newGen, 0)
	if err != nil {
		snap.Close()
		return nil, err
	}

	// The new generation is durable and verified: the logged records are
	// now redundant. A Reset failure is tolerated — replay skips records
	// whose generation predates the base — the log just stays fat until
	// the next successful truncation.
	walReset := false
	if m.cfg.Log != nil {
		walReset = m.cfg.Log.Reset() == nil
	}
	m.cfg.Engine.Swap(src)

	// In-flight protection: a query binds its source while holding a
	// pool slot, so one observed moment of full idleness means no query
	// can still be reading the replaced state. Only then is the previous
	// manager-owned mapping released. The process-initial snapshot is
	// left mapped for the life of the process (other components hold
	// references into it).
	if err := m.cfg.Engine.Quiesce(ctx); err != nil {
		// The swap already happened and is valid; the old mapping just
		// cannot be released yet. Leak it rather than risk a read fault.
		m.owned = nil
	} else if m.owned != nil {
		m.owned.Close()
	}
	m.owned = snap
	m.view = nv
	m.opsSinceBase = 0

	dur := time.Since(start).Seconds()
	m.compactionsTotal.Add(1)
	m.lastCompactBits.Store(math.Float64bits(dur))
	for {
		old := m.compactSumBits.Load()
		if m.compactSumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+dur)) {
			break
		}
	}
	return &CompactResult{Generation: newGen, Path: path, WALReset: walReset}, nil
}

// Stats samples the manager's state. The overlay gauges reflect the
// current view; counters are cumulative across compactions.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	v := m.view
	opsSinceBase := m.opsSinceBase
	m.mu.Unlock()
	return Stats{
		Generation:            v.generation,
		DeltaVersion:          v.version,
		OpsSinceBase:          opsSinceBase,
		DeltaNodes:            v.DeltaNodes(),
		DeltaEdges:            v.DeltaEdges(),
		Tombstones:            v.Tombstones(),
		MutationsTotal:        m.mutationsTotal.Load(),
		MutationBatches:       m.mutationBatches.Load(),
		CompactionsTotal:      m.compactionsTotal.Load(),
		LastCompactionSeconds: math.Float64frombits(m.lastCompactBits.Load()),
		CompactionSecondsSum:  math.Float64frombits(m.compactSumBits.Load()),
	}
}
