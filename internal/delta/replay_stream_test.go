package delta

import (
	"strings"
	"testing"
)

// TestReplayLoggedRules pins the idempotence contract the replication
// follower leans on when applying a primary's log through the stream
// seam: stale versions and older generations are skipped WITHOUT being
// re-appended to the local log (re-appending a skip would fork the
// follower's offsets from the primary's), holes and newer generations
// are refused, and only the exactly-next version applies and appends.
func TestReplayLoggedRules(t *testing.T) {
	fl := &fakeLog{}
	m, _ := newManagerWorldLog(t, "", fl)

	ops := []Op{{Kind: OpInsertNode, Table: diffTables[0], Text: "replaylogged seam probe"}}

	// Establish version 1..2 as the follower's current state.
	for v := uint64(1); v <= 2; v++ {
		applied, _, err := m.ReplayLogged(0, v, ops)
		if err != nil || !applied {
			t.Fatalf("seed v%d: applied=%v err=%v", v, applied, err)
		}
	}
	if len(fl.appended) != 2 {
		t.Fatalf("seed appends = %d, want 2", len(fl.appended))
	}

	cases := []struct {
		name       string
		gen, ver   uint64
		applied    bool
		errSubstr  string // "" = no error
		wantAppend bool
	}{
		{name: "replayed version is skipped, not re-appended", gen: 0, ver: 2, applied: false},
		{name: "ancient version is skipped", gen: 0, ver: 1, applied: false},
		{name: "version hole is refused", gen: 0, ver: 5, errSubstr: "a record is missing"},
		{name: "newer generation is refused", gen: 3, ver: 1, errSubstr: "ahead of base generation"},
		{name: "exactly-next version applies and appends", gen: 0, ver: 3, applied: true, wantAppend: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := len(fl.appended)
			verBefore := m.Stats().DeltaVersion
			applied, _, err := m.ReplayLogged(tc.gen, tc.ver, ops)
			if tc.errSubstr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.errSubstr) {
					t.Fatalf("err = %v, want substring %q", err, tc.errSubstr)
				}
				if applied {
					t.Fatal("refused record reported applied")
				}
			} else if err != nil {
				t.Fatal(err)
			}
			if applied != tc.applied {
				t.Fatalf("applied = %v, want %v", applied, tc.applied)
			}
			gotAppend := len(fl.appended) > before
			if gotAppend != tc.wantAppend {
				t.Fatalf("appended = %v, want %v", gotAppend, tc.wantAppend)
			}
			if !applied && m.Stats().DeltaVersion != verBefore {
				t.Fatal("skipped record moved the version")
			}
		})
	}
}

// TestReplayOldGeneration pins that records from a generation the
// follower has already compacted past are skipped silently — the
// primary's log can briefly serve pre-compaction records during the
// re-bootstrap handshake, and applying them onto the newer base would
// double-apply mutations the base already contains.
func TestReplayOldGeneration(t *testing.T) {
	m, _ := newManagerWorld(t, t.TempDir()+"/seam.banksnap")
	ops := []Op{{Kind: OpInsertNode, Table: diffTables[0], Text: "oldgen probe"}}
	if applied, _, err := m.ReplayLogged(0, 1, ops); err != nil || !applied {
		t.Fatalf("seed: applied=%v err=%v", applied, err)
	}
	if _, err := m.Compact(t.Context()); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Generation != 1 {
		t.Fatalf("generation = %d, want 1", st.Generation)
	}
	applied, _, err := m.ReplayLogged(0, 2, ops)
	if err != nil || applied {
		t.Fatalf("old-generation replay: applied=%v err=%v, want silent skip", applied, err)
	}
	if got := m.Stats().DeltaVersion; got != 0 {
		t.Fatalf("delta version moved to %d on a skipped old-generation record", got)
	}
}
