package delta

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"banks/internal/core"
	"banks/internal/engine"
)

// fakeLog is a LogAppender double: it records appends, and can be told
// to refuse them (the injected durability failure the atomicity tests
// need).
type fakeLog struct {
	fail      error // non-nil: Append refuses with this
	failReset error
	appended  []fakeRecord
	resets    int
}

type fakeRecord struct {
	generation, version uint64
	ops                 int
}

func (f *fakeLog) Append(generation, version uint64, ops []Op) (int64, error) {
	if f.fail != nil {
		return 0, f.fail
	}
	f.appended = append(f.appended, fakeRecord{generation, version, len(ops)})
	return int64(16 + 24*len(f.appended)), nil
}

func (f *fakeLog) Reset() error {
	if f.failReset != nil {
		return f.failReset
	}
	f.resets++
	return nil
}

// TestApplyAtomicOnWALFailure is the no-third-state proof: a valid batch
// the WAL refuses is not applied at all — the overlay, the serving
// source, and every counter stay exactly as they were, the error is a
// *WALError, and the next accepted batch reuses the version the failed
// one would have taken (no hole for replay to trip on).
func TestApplyAtomicOnWALFailure(t *testing.T) {
	fl := &fakeLog{fail: errors.New("disk full")}
	m, eng := newManagerWorldLog(t, "", fl)

	rng := rand.New(rand.NewSource(11))
	q := engine.Query{Terms: pickTerms(rng, 2), Algo: core.AlgoBidirectional, Opts: core.Options{K: 3}}
	before, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	batch := []Op{{Kind: OpInsertNode, Table: "paper", Text: "never durable"}}
	_, err = m.Apply(batch)
	var werr *WALError
	if !errors.As(err, &werr) {
		t.Fatalf("refused append returned %v, want *WALError", err)
	}
	st := m.Stats()
	if st.DeltaVersion != 0 || st.DeltaNodes != 0 || st.MutationsTotal != 0 ||
		st.MutationBatches != 0 || st.OpsSinceBase != 0 {
		t.Fatalf("failed append moved state: %+v", st)
	}
	after, err := eng.Search(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if so, sa := diffSignature(before), diffSignature(after); so != sa {
		t.Fatalf("failed append changed answers:\nbefore:\n%s\nafter:\n%s", so, sa)
	}

	// The log heals; the next batch takes version 1 — the version the
	// failed batch never burned.
	fl.fail = nil
	res, err := m.Apply(batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeltaVersion != 1 || res.WALOffset < 0 {
		t.Fatalf("post-recovery apply: %+v", res)
	}
	if len(fl.appended) != 1 || fl.appended[0] != (fakeRecord{0, 1, 1}) {
		t.Fatalf("log saw %+v, want exactly [(gen 0, ver 1, 1 op)]", fl.appended)
	}
}

// TestReplayRules pins the idempotence table that makes recovery safe at
// every crash point: stale generations and duplicate versions skip,
// future generations and version holes refuse, and replayed batches
// count as mutations without re-appending to the log.
func TestReplayRules(t *testing.T) {
	fl := &fakeLog{}
	m, _ := newManagerWorldLog(t, "", fl)
	batch := []Op{{Kind: OpInsertNode, Table: "paper", Text: "replayed"}}

	if applied, err := m.Replay(0, 1, batch); err != nil || !applied {
		t.Fatalf("first replay: applied=%v err=%v", applied, err)
	}
	if applied, err := m.Replay(0, 1, batch); err != nil || applied {
		t.Fatalf("duplicate version must skip: applied=%v err=%v", applied, err)
	}
	if _, err := m.Replay(0, 3, batch); err == nil {
		t.Fatal("version hole accepted")
	}
	// A record stamped with a generation older than the base: its effects
	// are already folded into the snapshot — skip silently.
	m.view.generation = 5
	if applied, err := m.Replay(4, 2, batch); err != nil || applied {
		t.Fatalf("stale generation must skip: applied=%v err=%v", applied, err)
	}
	if _, err := m.Replay(6, 2, batch); err == nil {
		t.Fatal("future generation accepted (log does not match snapshot)")
	}

	st := m.Stats()
	if st.MutationsTotal != 1 || st.MutationBatches != 1 || st.OpsSinceBase != 1 {
		t.Fatalf("replay accounting: %+v", st)
	}
	if len(fl.appended) != 0 {
		t.Fatalf("replay re-appended to the log: %+v", fl.appended)
	}
}

// TestCompactResetsWAL: a durable compaction truncates the log exactly
// once; a Reset failure is tolerated (WALReset false, compaction still
// succeeds) because replay skips records older than the new base.
func TestCompactResetsWAL(t *testing.T) {
	fl := &fakeLog{}
	m, _ := newManagerWorldLog(t, filepath.Join(t.TempDir(), "live.banksnap"), fl)
	if _, err := m.Apply([]Op{{Kind: OpInsertNode, Table: "paper", Text: "soon in base"}}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.WALReset || fl.resets != 1 {
		t.Fatalf("compact did not reset the log: %+v, resets=%d", res, fl.resets)
	}
	if st := m.Stats(); st.OpsSinceBase != 0 {
		t.Fatalf("OpsSinceBase not reset by compaction: %+v", st)
	}

	fl.failReset = errors.New("injected")
	if _, err := m.Apply([]Op{{Kind: OpInsertNode, Table: "paper", Text: "again"}}); err != nil {
		t.Fatal(err)
	}
	res, err = m.Compact(context.Background())
	if err != nil {
		t.Fatalf("compaction must tolerate a failed log reset: %v", err)
	}
	if res.WALReset {
		t.Fatalf("WALReset reported true despite the failure: %+v", res)
	}
}
