// Package delta implements the live-mutation layer of the serving tier:
// an in-memory overlay of node/edge/term inserts and tombstones on top of
// an immutable (typically mmap'd) base graph + index, presented to the
// search algorithms through the graph.View seam so every algorithm sees
// one logical graph.
//
// The overlay is built for bit-identical correctness, not write
// throughput: applying a mutation batch produces a brand-new immutable
// View whose per-node adjacency, derived backward-edge weights and node
// prestige are exactly what a from-scratch Build of the mutated graph
// would produce (the differential tests compare float bits). Readers
// never lock — each query binds one View via the engine's atomic Source
// swap, so every answer is consistent with some delta version.
//
// Semantics:
//
//   - Node IDs are stable. Deleting a node tombstones it in place: its
//     adjacency empties, every incident edge disappears (and the derived
//     weights of surviving edges around it are recomputed), and it stops
//     matching any term or relation name. Inserted nodes get IDs appended
//     after the base.
//   - DeleteEdge(u,v) removes every parallel u→v edge, base and
//     previously inserted alike. A later InsertEdge(u,v) re-adds one.
//   - The logical edge order is: surviving base edges in base order,
//     then live inserted edges in insertion order. Per-node adjacency
//     order is all that search results depend on, and this rule keeps it
//     identical to rebuilding the graph with the same edge sequence.
//   - Backward-edge weights follow §2.3 of the paper against the mutated
//     indegrees: w_vu = w_uv·log2(1+indeg(v)), clamped below by w_uv —
//     the same expression the Builder evaluates, so recomputed weights
//     are bit-equal whenever the indegree is unchanged.
//   - Prestige is recomputed per Apply over the whole overlay view in
//     the same mode the base was built with, preserving the float
//     accumulation order of a fresh build. RandomWalk mode makes every
//     Apply cost a full power iteration; high-mutation-rate deployments
//     should build (and serve) with Indegree or Uniform prestige.
package delta

import (
	"fmt"
	"math"
	"sort"

	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/prestige"
)

// PrestigeMode selects how node prestige is recomputed after a mutation
// batch. It must match the mode the base snapshot was built with,
// otherwise the very first Apply visibly re-ranks untouched nodes.
type PrestigeMode int

const (
	// PrestigeRandomWalk is the paper's biased PageRank (build default).
	PrestigeRandomWalk PrestigeMode = iota
	// PrestigeIndegree is the BANKS-I log-indegree prestige.
	PrestigeIndegree
	// PrestigeUniform assigns every node prestige 1.
	PrestigeUniform
)

// OpKind enumerates the mutation operations.
type OpKind string

const (
	OpInsertNode OpKind = "insert_node"
	OpInsertEdge OpKind = "insert_edge"
	OpDeleteNode OpKind = "delete_node"
	OpDeleteEdge OpKind = "delete_edge"
	OpInsertTerm OpKind = "insert_term"
	OpDeleteTerm OpKind = "delete_term"
)

// Op is one mutation. Which fields are meaningful depends on Kind:
//
//	insert_node: Table (required), Text (tokenized into term postings)
//	insert_edge: From, To, Weight (>0, finite), EdgeType
//	delete_node: Node
//	delete_edge: From, To (removes all parallel From→To edges)
//	insert_term: Node, Term
//	delete_term: Node, Term
type Op struct {
	Kind     OpKind
	Table    string
	Text     string
	Node     graph.NodeID
	From, To graph.NodeID
	Weight   float64
	EdgeType graph.EdgeType
	Term     string
}

// dEdge is one live inserted edge, kept in insertion order.
type dEdge struct {
	from, to graph.NodeID
	weight   float64
	etype    graph.EdgeType
}

// dNode is one appended node.
type dNode struct {
	table string
}

// edgeKey identifies a directed (from,to) pair for tombstoning.
type edgeKey struct{ from, to graph.NodeID }

// mutState is the cumulative mutation state since the base generation.
// Views clone it on Apply; a View's copy is immutable.
type mutState struct {
	tomb     map[graph.NodeID]bool
	delEdges map[edgeKey]bool
	edges    []dEdge
	nodes    []dNode
	// addPost holds inserted (term → nodes) postings in insertion order;
	// delPost holds deleted base (term, node) pairs. Term keys are in
	// index.Normalize form.
	addPost map[string][]graph.NodeID
	delPost map[string]map[graph.NodeID]bool
}

func newMutState() *mutState {
	return &mutState{
		tomb:     make(map[graph.NodeID]bool),
		delEdges: make(map[edgeKey]bool),
		addPost:  make(map[string][]graph.NodeID),
		delPost:  make(map[string]map[graph.NodeID]bool),
	}
}

func (s *mutState) clone() *mutState {
	c := &mutState{
		tomb:     make(map[graph.NodeID]bool, len(s.tomb)),
		delEdges: make(map[edgeKey]bool, len(s.delEdges)),
		edges:    append([]dEdge(nil), s.edges...),
		nodes:    append([]dNode(nil), s.nodes...),
		addPost:  make(map[string][]graph.NodeID, len(s.addPost)),
		delPost:  make(map[string]map[graph.NodeID]bool, len(s.delPost)),
	}
	for k, v := range s.tomb {
		c.tomb[k] = v
	}
	for k, v := range s.delEdges {
		c.delEdges[k] = v
	}
	for t, list := range s.addPost {
		c.addPost[t] = append([]graph.NodeID(nil), list...)
	}
	for t, set := range s.delPost {
		cs := make(map[graph.NodeID]bool, len(set))
		for u := range set {
			cs[u] = true
		}
		c.delPost[t] = cs
	}
	return c
}

// View is one immutable overlay state: the base graph + index with a
// frozen mutation state merged in. It satisfies graph.View, so the core
// algorithms (and prestige recomputation) run over it directly. Any
// number of goroutines may read a View concurrently; Apply never touches
// an existing View.
type View struct {
	base   *graph.Graph
	baseIx *index.Index
	st     *mutState

	numNodes int
	// tables is base tables plus any relations first seen in inserts;
	// nodeTable holds, per appended node, its index into tables.
	tables    []string
	nodeTable []int32
	// adj holds the merged adjacency of every node whose base adjacency
	// is no longer literally correct (dirty nodes) and of every appended
	// node (possibly nil). Clean base nodes serve their base slice with
	// zero copies.
	adj map[graph.NodeID][]graph.Half
	// relAdd maps a normalized relation name to the live appended nodes
	// of that relation (for relation-name pseudo-postings).
	relAdd map[string][]graph.NodeID

	// pres is the recomputed prestige (nil at version 0 — base
	// passthrough — and in Uniform mode, where every node scores 1).
	pres        []float64
	maxPrestige float64
	uniform     bool

	generation uint64
	version    uint64
	mode       PrestigeMode
	popts      prestige.Options
}

// NewView wraps a base graph + index as the pristine (version 0) overlay
// of the given snapshot generation. mode and popts must match how the
// base's prestige was computed.
func NewView(base *graph.Graph, baseIx *index.Index, generation uint64, mode PrestigeMode, popts prestige.Options) *View {
	return &View{
		base:        base,
		baseIx:      baseIx,
		st:          newMutState(),
		numNodes:    base.NumNodes(),
		tables:      base.Tables(),
		adj:         map[graph.NodeID][]graph.Half{},
		relAdd:      map[string][]graph.NodeID{},
		maxPrestige: base.MaxPrestige(),
		generation:  generation,
		version:     0,
		mode:        mode,
		popts:       popts,
	}
}

// Generation returns the base snapshot generation the view overlays.
func (v *View) Generation() uint64 { return v.generation }

// Version returns the number of mutation batches applied since the base.
func (v *View) Version() uint64 { return v.version }

// Base returns the base graph the view overlays.
func (v *View) Base() *graph.Graph { return v.base }

// NumNodes implements graph.View.
func (v *View) NumNodes() int { return v.numNodes }

// Neighbors implements graph.View.
func (v *View) Neighbors(u graph.NodeID) []graph.Half {
	if a, ok := v.adj[u]; ok {
		return a
	}
	return v.base.Neighbors(u)
}

// Degree implements graph.View.
func (v *View) Degree(u graph.NodeID) int {
	if a, ok := v.adj[u]; ok {
		return len(a)
	}
	return v.base.Degree(u)
}

// Prestige implements graph.View.
func (v *View) Prestige(u graph.NodeID) float64 {
	switch {
	case v.uniform:
		return 1
	case v.pres != nil:
		return v.pres[u]
	default:
		return v.base.Prestige(u)
	}
}

// MaxPrestige implements graph.View.
func (v *View) MaxPrestige() float64 { return v.maxPrestige }

// Table returns the relation name of node u (valid for appended nodes
// too, where the base graph cannot answer).
func (v *View) Table(u graph.NodeID) string {
	if int(u) < v.base.NumNodes() {
		return v.base.Table(u)
	}
	return v.tables[v.nodeTable[int(u)-v.base.NumNodes()]]
}

// Deleted reports whether node u is tombstoned.
func (v *View) Deleted(u graph.NodeID) bool { return v.st.tomb[u] }

// DeltaNodes returns how many live (non-tombstoned) nodes the overlay
// has appended beyond the base.
func (v *View) DeltaNodes() int {
	n := 0
	for i := range v.st.nodes {
		if !v.st.tomb[graph.NodeID(v.base.NumNodes()+i)] {
			n++
		}
	}
	return n
}

// DeltaEdges returns how many live inserted edges the overlay holds.
func (v *View) DeltaEdges() int { return len(v.st.edges) }

// Tombstones returns how many nodes are tombstoned.
func (v *View) Tombstones() int { return len(v.st.tomb) }

// Lookup returns the nodes matching term under the overlay: base term
// postings minus tombstones minus deleted (term,node) pairs, plus
// inserted postings, plus relation-name pseudo-postings (base relations
// minus tombstones, plus live appended nodes of a matching relation).
// The result is sorted and deduplicated, exactly like index.Lookup.
func (v *View) Lookup(term string) []graph.NodeID {
	t := index.Normalize(term)
	if t == "" {
		return nil
	}
	if v.version == 0 {
		return v.baseIx.Lookup(t)
	}
	del := v.st.delPost[t]
	var out []graph.NodeID
	for _, u := range v.baseIx.TermPostings(t) {
		if !v.st.tomb[u] && !del[u] {
			out = append(out, u)
		}
	}
	for _, u := range v.baseIx.RelationPostings(t) {
		if !v.st.tomb[u] {
			out = append(out, u)
		}
	}
	for _, u := range v.st.addPost[t] {
		if !v.st.tomb[u] {
			out = append(out, u)
		}
	}
	out = append(out, v.relAdd[t]...)
	return dedupeIDs(out)
}

func dedupeIDs(list []graph.NodeID) []graph.NodeID {
	if len(list) < 2 {
		return list
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	w := 1
	for i := 1; i < len(list); i++ {
		if list[i] != list[i-1] {
			list[w] = list[i]
			w++
		}
	}
	return list[:w]
}

// Apply validates and applies one mutation batch on top of v, returning
// a new immutable View (v itself is untouched) plus the NodeIDs assigned
// to the batch's insert_node ops, in op order. On any invalid op the
// whole batch is rejected.
func (v *View) Apply(batch []Op) (*View, []graph.NodeID, error) {
	if len(batch) == 0 {
		return nil, nil, fmt.Errorf("delta: empty mutation batch")
	}
	st := v.st.clone()
	baseN := v.base.NumNodes()
	numNodes := baseN + len(st.nodes)
	tables := append([]string(nil), v.tables...)
	tableIdx := make(map[string]int, len(tables))
	for i, t := range tables {
		tableIdx[t] = i
	}
	nodeTable := append([]int32(nil), v.nodeTable...)

	inRange := func(u graph.NodeID) bool { return u >= 0 && int(u) < numNodes }
	var assigned []graph.NodeID

	for i, op := range batch {
		switch op.Kind {
		case OpInsertNode:
			if op.Table == "" {
				return nil, nil, fmt.Errorf("delta: op %d: insert_node requires a table", i)
			}
			ti, ok := tableIdx[op.Table]
			if !ok {
				ti = len(tables)
				tables = append(tables, op.Table)
				tableIdx[op.Table] = ti
			}
			id := graph.NodeID(numNodes)
			numNodes++
			st.nodes = append(st.nodes, dNode{table: op.Table})
			nodeTable = append(nodeTable, int32(ti))
			for _, term := range index.Tokenize(op.Text) {
				st.addPost[term] = append(st.addPost[term], id)
			}
			assigned = append(assigned, id)

		case OpInsertEdge:
			u, w := op.From, op.To
			if !inRange(u) || !inRange(w) {
				return nil, nil, fmt.Errorf("delta: op %d: edge (%d,%d) references node outside [0,%d)", i, u, w, numNodes)
			}
			if st.tomb[u] || st.tomb[w] {
				return nil, nil, fmt.Errorf("delta: op %d: edge (%d,%d) references a deleted node", i, u, w)
			}
			if u == w {
				return nil, nil, fmt.Errorf("delta: op %d: self-loop on node %d not allowed", i, u)
			}
			if op.Weight <= 0 || math.IsNaN(op.Weight) || math.IsInf(op.Weight, 0) {
				return nil, nil, fmt.Errorf("delta: op %d: edge (%d,%d) has invalid weight %v", i, u, w, op.Weight)
			}
			st.edges = append(st.edges, dEdge{from: u, to: w, weight: op.Weight, etype: op.EdgeType})

		case OpDeleteNode:
			u := op.Node
			if !inRange(u) {
				return nil, nil, fmt.Errorf("delta: op %d: delete_node %d outside [0,%d)", i, u, numNodes)
			}
			st.tomb[u] = true
			// Inserted edges incident to a tombstone are physically
			// removed (base edges are filtered by the tombstone itself).
			live := st.edges[:0:0]
			for _, e := range st.edges {
				if e.from != u && e.to != u {
					live = append(live, e)
				}
			}
			st.edges = live

		case OpDeleteEdge:
			u, w := op.From, op.To
			if !inRange(u) || !inRange(w) {
				return nil, nil, fmt.Errorf("delta: op %d: delete_edge (%d,%d) references node outside [0,%d)", i, u, w, numNodes)
			}
			st.delEdges[edgeKey{u, w}] = true
			live := st.edges[:0:0]
			for _, e := range st.edges {
				if e.from != u || e.to != w {
					live = append(live, e)
				}
			}
			st.edges = live

		case OpInsertTerm, OpDeleteTerm:
			u := op.Node
			if !inRange(u) {
				return nil, nil, fmt.Errorf("delta: op %d: %s on node %d outside [0,%d)", i, op.Kind, u, numNodes)
			}
			t := index.Normalize(op.Term)
			if t == "" {
				return nil, nil, fmt.Errorf("delta: op %d: term %q normalizes to nothing", i, op.Term)
			}
			if op.Kind == OpInsertTerm {
				if st.tomb[u] {
					return nil, nil, fmt.Errorf("delta: op %d: insert_term on deleted node %d", i, u)
				}
				if del := st.delPost[t]; del[u] {
					delete(del, u)
				}
				st.addPost[t] = append(st.addPost[t], u)
			} else {
				if list, ok := st.addPost[t]; ok {
					live := list[:0:0]
					for _, n := range list {
						if n != u {
							live = append(live, n)
						}
					}
					if len(live) == 0 {
						delete(st.addPost, t)
					} else {
						st.addPost[t] = live
					}
				}
				if st.delPost[t] == nil {
					st.delPost[t] = make(map[graph.NodeID]bool)
				}
				st.delPost[t][u] = true
			}

		default:
			return nil, nil, fmt.Errorf("delta: op %d: unknown op kind %q", i, op.Kind)
		}
	}

	nv := &View{
		base:       v.base,
		baseIx:     v.baseIx,
		st:         st,
		numNodes:   numNodes,
		tables:     tables,
		nodeTable:  nodeTable,
		generation: v.generation,
		version:    v.version + 1,
		mode:       v.mode,
		popts:      v.popts,
	}
	nv.rebuild()
	return nv, assigned, nil
}

// rebuild derives the merged adjacencies, relation overlays and prestige
// of a freshly applied view from its cumulative mutation state.
func (nv *View) rebuild() {
	base, st := nv.base, nv.st
	baseN := base.NumNodes()

	// Memoized mutated indegree. Only consulted for nodes that can still
	// carry edges (never tombstones).
	indegMemo := make(map[graph.NodeID]int)
	indegP := func(w graph.NodeID) int {
		if d, ok := indegMemo[w]; ok {
			return d
		}
		d := 0
		if int(w) < baseN {
			for _, h := range base.Neighbors(w) {
				if !h.Forward && !st.tomb[h.To] && !st.delEdges[edgeKey{h.To, w}] {
					d++
				}
			}
		}
		for _, e := range st.edges {
			if e.to == w {
				d++
			}
		}
		indegMemo[w] = d
		return d
	}
	baseIndeg := func(w graph.NodeID) int {
		d := 0
		for _, h := range base.Neighbors(w) {
			if !h.Forward {
				d++
			}
		}
		return d
	}

	// Dirty set: every node whose base adjacency slice is no longer
	// literally the truth. Appended nodes are always dirty (the base has
	// no slice for them at all).
	dirty := make(map[graph.NodeID]bool)
	for i := range st.nodes {
		dirty[graph.NodeID(baseN+i)] = true
	}
	for u := range st.tomb {
		dirty[u] = true
		if int(u) < baseN {
			for _, h := range base.Neighbors(u) {
				dirty[h.To] = true
			}
		}
	}
	for k := range st.delEdges {
		dirty[k.from] = true
		dirty[k.to] = true
	}
	for _, e := range st.edges {
		dirty[e.from] = true
		dirty[e.to] = true
	}
	// Nodes whose indegree changed: their surviving in-edges get new
	// backward weights, so they and all their base in-neighbors (the
	// forward side of those edges) must be rebuilt.
	candidates := make(map[graph.NodeID]bool)
	for _, e := range st.edges {
		candidates[e.to] = true
	}
	for k := range st.delEdges {
		candidates[k.to] = true
	}
	for u := range st.tomb {
		if int(u) < baseN {
			for _, h := range base.Neighbors(u) {
				if h.Forward {
					candidates[h.To] = true
				}
			}
		}
	}
	for w := range candidates {
		if st.tomb[w] || int(w) >= baseN {
			continue
		}
		if indegP(w) != baseIndeg(w) {
			dirty[w] = true
			for _, h := range base.Neighbors(w) {
				if !h.Forward {
					dirty[h.To] = true
				}
			}
		}
	}

	// §2.3 backward weight against the mutated indegree — the identical
	// float expression (and clamp) the Builder evaluates, so the result
	// is bit-equal to a fresh Build.
	backWeight := func(w float64, indeg int) float64 {
		back := w * math.Log2(1+float64(indeg))
		if back < w {
			back = w
		}
		return back
	}

	nv.adj = make(map[graph.NodeID][]graph.Half, len(dirty))
	for u := range dirty {
		if st.tomb[u] {
			nv.adj[u] = nil
			continue
		}
		var out []graph.Half
		if int(u) < baseN {
			for _, h := range base.Neighbors(u) {
				if h.Forward {
					// Edge u→h.To with original weight h.WOut.
					if st.tomb[h.To] || st.delEdges[edgeKey{u, h.To}] {
						continue
					}
					out = append(out, graph.Half{To: h.To, WOut: h.WOut, WIn: backWeight(h.WOut, indegP(h.To)), Type: h.Type, Forward: true})
				} else {
					// Edge h.To→u with original weight h.WIn.
					if st.tomb[h.To] || st.delEdges[edgeKey{h.To, u}] {
						continue
					}
					out = append(out, graph.Half{To: h.To, WOut: backWeight(h.WIn, indegP(u)), WIn: h.WIn, Type: h.Type, Forward: false})
				}
			}
		}
		for _, e := range st.edges {
			if e.from == u {
				out = append(out, graph.Half{To: e.to, WOut: e.weight, WIn: backWeight(e.weight, indegP(e.to)), Type: e.etype, Forward: true})
			} else if e.to == u {
				out = append(out, graph.Half{To: e.from, WOut: backWeight(e.weight, indegP(u)), WIn: e.weight, Type: e.etype, Forward: false})
			}
		}
		nv.adj[u] = out
	}

	// Relation pseudo-postings for appended nodes, keyed like Freeze.
	nv.relAdd = make(map[string][]graph.NodeID)
	for i := range st.nodes {
		u := graph.NodeID(baseN + i)
		if !st.tomb[u] {
			key := index.Normalize(st.nodes[i].table)
			nv.relAdd[key] = append(nv.relAdd[key], u)
		}
	}

	// Prestige, recomputed in build order over the overlay view so the
	// floats accumulate exactly as a fresh Build would.
	switch nv.mode {
	case PrestigeUniform:
		nv.uniform = true
		nv.maxPrestige = 1
	case PrestigeIndegree:
		nv.pres = prestige.Indegree(nv)
		nv.maxPrestige = maxOf(nv.pres)
	default:
		p, err := prestige.Compute(nv, nv.popts)
		if err != nil {
			// Compute only fails on invalid options, which NewView's
			// callers fixed at construction; an empty graph cannot occur
			// (the base has nodes). Fall back to indifference.
			nv.uniform = true
			nv.maxPrestige = 1
			return
		}
		nv.pres = p
		nv.maxPrestige = maxOf(p)
	}
}

func maxOf(p []float64) float64 {
	m := 0.0
	for _, v := range p {
		if v > m {
			m = v
		}
	}
	return m
}

// Materialize builds the compacted form of the view: a standalone graph
// (no base aliasing beyond the slices FromSections validates) and a
// frozen index whose relation postings contain only live nodes —
// tombstoned placeholders keep their ID (so references stay stable) but
// are unreachable and unseedable. The result feeds the snapshot writer
// for generation N+1.
func (v *View) Materialize() (*graph.Graph, *index.Index, error) {
	n := v.numNodes
	offsets := make([]int32, n+1)
	total := 0
	for u := 0; u < n; u++ {
		total += v.Degree(graph.NodeID(u))
		offsets[u+1] = int32(total)
	}
	if total%2 != 0 {
		return nil, nil, fmt.Errorf("delta: unpaired half-edges (%d)", total)
	}
	halves := make([]graph.Half, 0, total)
	for u := 0; u < n; u++ {
		halves = append(halves, v.Neighbors(graph.NodeID(u))...)
	}

	baseN := v.base.NumNodes()
	nodeTable := make([]int32, n)
	copy(nodeTable, v.base.Sections().NodeTable)
	copy(nodeTable[baseN:], v.nodeTable)

	pres := make([]float64, n)
	for u := range pres {
		pres[u] = v.Prestige(graph.NodeID(u))
	}

	g, err := graph.FromSections(graph.Sections{
		Offsets:      offsets,
		Halves:       halves,
		NodeTable:    nodeTable,
		Prestige:     pres,
		Tables:       append([]string(nil), v.tables...),
		NumOrigEdges: total / 2,
		MaxPrestige:  v.maxPrestige,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("delta: materialize: %w", err)
	}

	postings := make(map[string][]graph.NodeID)
	v.baseIx.ForEachTermPosting(func(term string, nodes []graph.NodeID) {
		del := v.st.delPost[term]
		var keep []graph.NodeID
		for _, u := range nodes {
			if !v.st.tomb[u] && !del[u] {
				keep = append(keep, u)
			}
		}
		if len(keep) > 0 {
			postings[term] = keep
		}
	})
	for term, nodes := range v.st.addPost {
		for _, u := range nodes {
			if !v.st.tomb[u] {
				postings[term] = append(postings[term], u)
			}
		}
	}
	relations := make(map[string][]graph.NodeID)
	for u := 0; u < n; u++ {
		if !v.st.tomb[graph.NodeID(u)] {
			key := index.Normalize(v.Table(graph.NodeID(u)))
			relations[key] = append(relations[key], graph.NodeID(u))
		}
	}
	return g, index.FromMaps(postings, relations), nil
}
