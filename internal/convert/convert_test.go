package convert

import (
	"testing"

	"banks/internal/graph"
	"banks/internal/relational"
)

func sampleDB(t *testing.T) *relational.Database {
	t.Helper()
	db := relational.NewDatabase()
	author, _ := db.CreateTable("author", []string{"name"}, nil)
	paper, _ := db.CreateTable("paper", []string{"title"}, nil)
	writes, _ := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	paper.Append([]string{"Transaction Recovery"}, nil)
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{1, 0})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildBasics(t *testing.T) {
	db := sampleDB(t)
	res, err := Build(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4 (two writes rows × two FKs)", g.NumEdges())
	}
	// Mapping round-trip.
	ref := relational.RowRef{Table: "paper", Row: 0}
	u := res.Mapping.NodeOf(ref)
	if g.Table(u) != "paper" {
		t.Fatalf("node %d has table %q", u, g.Table(u))
	}
	back := res.Mapping.RowOf(g, u)
	if back != ref {
		t.Fatalf("RowOf = %+v, want %+v", back, ref)
	}
}

func TestBuildIndex(t *testing.T) {
	db := sampleDB(t)
	res, err := Build(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gray := res.Index.Lookup("gray")
	if len(gray) != 1 || gray[0] != res.Mapping.Node("author", 0) {
		t.Fatalf("Lookup(gray) = %v", gray)
	}
	// Relation-name matching.
	papers := res.Index.Lookup("paper")
	if len(papers) != 1 || papers[0] != res.Mapping.Node("paper", 0) {
		t.Fatalf("Lookup(paper) = %v", papers)
	}
	writes := res.Index.Lookup("writes")
	if len(writes) != 2 {
		t.Fatalf("Lookup(writes) = %v, want both link tuples", writes)
	}
}

func TestBuildEdgeTypes(t *testing.T) {
	db := sampleDB(t)
	res, err := Build(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	et, ok := res.EdgeTypes.Lookup("writes.author")
	if !ok {
		t.Fatal("edge type writes.author not registered")
	}
	if res.EdgeTypes.Name(et) != "writes.author" {
		t.Fatalf("Name(%d) = %q", et, res.EdgeTypes.Name(et))
	}
	if _, ok := res.EdgeTypes.Lookup("nosuch.fk"); ok {
		t.Fatal("unknown edge type looked up successfully")
	}
	// Every half-edge at a writes node must carry a writes.* type.
	w0 := res.Mapping.Node("writes", 0)
	for _, h := range res.Graph.Neighbors(w0) {
		name := res.EdgeTypes.Name(h.Type)
		if name != "writes.author" && name != "writes.paper" {
			t.Fatalf("unexpected edge type %q at writes node", name)
		}
	}
}

func TestBuildCustomWeights(t *testing.T) {
	db := sampleDB(t)
	res, err := Build(db, Options{ForwardWeight: func(table, fk string) float64 {
		if table == "writes" && fk == "paper" {
			return 2.5
		}
		return 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	w0 := res.Mapping.Node("writes", 0)
	p0 := res.Mapping.Node("paper", 0)
	found := false
	for _, h := range res.Graph.Neighbors(w0) {
		if h.To == p0 && h.Forward {
			found = true
			if h.WOut != 2.5 {
				t.Fatalf("custom weight not applied: %v", h.WOut)
			}
		}
	}
	if !found {
		t.Fatal("edge writes→paper missing")
	}
}

func TestBuildNullFKsSkipped(t *testing.T) {
	db := relational.NewDatabase()
	parent, _ := db.CreateTable("parent", nil, nil)
	child, _ := db.CreateTable("child", nil, []relational.FK{{Name: "p", RefTable: "parent"}})
	parent.Append(nil, nil)
	child.Append(nil, []int32{-1}) // NULL fk
	child.Append(nil, []int32{0})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	res, err := Build(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (NULL fk skipped)", res.Graph.NumEdges())
	}
	if res.Graph.Degree(res.Mapping.Node("child", 0)) != 0 {
		t.Fatal("NULL-fk child should be isolated")
	}
}

func TestNodeIDsContiguousPerTable(t *testing.T) {
	db := sampleDB(t)
	res, err := Build(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Tables in creation order: author, paper, writes.
	if res.Mapping.Node("author", 0) != 0 || res.Mapping.Node("author", 1) != 1 {
		t.Fatal("author nodes not first")
	}
	if res.Mapping.Node("paper", 0) != 2 {
		t.Fatal("paper node not at offset 2")
	}
	if res.Mapping.Node("writes", 1) != graph.NodeID(4) {
		t.Fatal("writes nodes not contiguous")
	}
}
