// Package convert turns a relational database into the BANKS data graph
// and keyword index (§2.1, §3).
//
// For each row r the data graph gets a node u_r; for each foreign key from
// r1 to r2 the graph gets a directed edge u_r1 → u_r2 with the
// schema-defined forward weight (default 1). Backward edges and their
// weights are derived inside the graph builder. Text attributes of each
// row are tokenized into the keyword index attached to the row's node.
package convert

import (
	"fmt"

	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/relational"
)

// Mapping translates between (table, row) pairs and graph node IDs. Nodes
// are assigned contiguously per table in table-creation order, so the
// translation is a base offset per table.
type Mapping struct {
	base   map[string]graph.NodeID
	tables []string
}

// TableBase is one entry of a serialized Mapping: the first node ID
// assigned to a table's rows (rows are contiguous per table).
type TableBase struct {
	Table string
	Base  graph.NodeID
}

// Export returns the mapping as (table, base) pairs in table-creation
// order, for snapshot serialization.
func (m *Mapping) Export() []TableBase {
	out := make([]TableBase, len(m.tables))
	for i, t := range m.tables {
		out[i] = TableBase{Table: t, Base: m.base[t]}
	}
	return out
}

// NewMapping reconstructs a Mapping from exported (table, base) pairs.
func NewMapping(bases []TableBase) *Mapping {
	m := &Mapping{base: make(map[string]graph.NodeID, len(bases)), tables: make([]string, len(bases))}
	for i, tb := range bases {
		m.tables[i] = tb.Table
		m.base[tb.Table] = tb.Base
	}
	return m
}

// NodeOf returns the node for a row reference.
func (m *Mapping) NodeOf(ref relational.RowRef) graph.NodeID {
	return m.base[ref.Table] + graph.NodeID(ref.Row)
}

// Node returns the node for (table, row).
func (m *Mapping) Node(table string, row int32) graph.NodeID {
	return m.base[table] + graph.NodeID(row)
}

// RowOf returns the row reference of node u; g must be the graph the
// mapping was built with.
func (m *Mapping) RowOf(g *graph.Graph, u graph.NodeID) relational.RowRef {
	table := g.Table(u)
	return relational.RowRef{Table: table, Row: int32(u - m.base[table])}
}

// EdgeTypeName returns the human-readable name of an edge type produced by
// Build ("table.fk"). Type 0 is "".
type EdgeTypes struct {
	names []string
}

// Name returns the name of edge type t.
func (e *EdgeTypes) Name(t graph.EdgeType) string {
	if int(t) < len(e.names) {
		return e.names[t]
	}
	return fmt.Sprintf("type%d", t)
}

// Names returns all edge-type names indexed by graph.EdgeType value, for
// snapshot serialization. The returned slice must not be modified.
func (e *EdgeTypes) Names() []string { return e.names }

// NewEdgeTypes reconstructs an EdgeTypes from serialized names.
func NewEdgeTypes(names []string) *EdgeTypes {
	return &EdgeTypes{names: names}
}

// Lookup returns the edge type with the given name, or false.
func (e *EdgeTypes) Lookup(name string) (graph.EdgeType, bool) {
	for i, n := range e.names {
		if n == name {
			return graph.EdgeType(i), true
		}
	}
	return 0, false
}

// Options configures conversion.
type Options struct {
	// ForwardWeight returns the schema-defined weight of the forward edge
	// induced by the named foreign key. nil means weight 1 for all edges
	// (the paper's default: "The weights of forward edges ... are defined
	// by the schema, and default to 1").
	ForwardWeight func(table, fk string) float64
}

// Result bundles the artifacts of a conversion.
type Result struct {
	Graph     *graph.Graph
	Index     *index.Index
	Mapping   *Mapping
	EdgeTypes *EdgeTypes
}

// Build converts db (which must be frozen) into a data graph and keyword
// index.
func Build(db *relational.Database, opts Options) (*Result, error) {
	b := graph.NewBuilder()
	m := &Mapping{base: make(map[string]graph.NodeID), tables: db.TableNames()}

	for _, name := range db.TableNames() {
		t := db.Table(name)
		if t.NumRows() == 0 {
			m.base[name] = graph.NodeID(b.NumNodes())
			// Ensure the relation name is still known to the graph for
			// relation-name keyword matching even when empty: skip —
			// empty relations contribute no nodes and thus no matches.
			continue
		}
		m.base[name] = b.AddNodes(name, t.NumRows())
	}

	et := &EdgeTypes{names: []string{""}}
	for _, name := range db.TableNames() {
		t := db.Table(name)
		for k, fk := range t.FKs {
			etype := graph.EdgeType(len(et.names))
			et.names = append(et.names, name+"."+fk.Name)
			w := 1.0
			if opts.ForwardWeight != nil {
				if v := opts.ForwardWeight(name, fk.Name); v > 0 {
					w = v
				}
			}
			for i := int32(0); i < int32(t.NumRows()); i++ {
				ref := t.Row(i).FKs[k]
				if ref < 0 {
					continue
				}
				from := m.Node(name, i)
				to := m.Node(fk.RefTable, ref)
				if err := b.AddEdge(from, to, w, etype); err != nil {
					return nil, fmt.Errorf("convert: %s row %d fk %s: %w", name, i, fk.Name, err)
				}
			}
		}
	}

	g := b.Build()

	ix := index.New()
	for _, name := range db.TableNames() {
		t := db.Table(name)
		for i := int32(0); i < int32(t.NumRows()); i++ {
			u := m.Node(name, i)
			for _, txt := range t.Row(i).Texts {
				ix.AddText(u, txt)
			}
		}
	}
	ix.Freeze(g)

	return &Result{Graph: g, Index: ix, Mapping: m, EdgeTypes: et}, nil
}
