package wal

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestReadAtRoundTrip: the bytes ReadAt serves, decoded by DecodeFrames,
// are the records that were appended — and appending them to a second
// log reproduces the file byte-identically at identical offsets (the
// property follower replication is built on).
func TestReadAtRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.wal")
	l, _ := mustOpen(t, path, Options{})
	defer l.Close()

	var offsets []int64
	for v := 1; v <= 5; v++ {
		off, err := l.Append(0, uint64(v), testOps())
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, off)
	}

	chunk, end, err := l.ReadAt(HeaderSize, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if end != l.Size() {
		t.Fatalf("ReadAt end %d != Size %d", end, l.Size())
	}
	recs, err := DecodeFrames(chunk)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("decoded %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Version != uint64(i+1) || !reflect.DeepEqual(rec.Ops, testOps()) {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}

	// A follower appending the same records reproduces identical offsets.
	fpath := filepath.Join(t.TempDir(), "f.wal")
	fl, _ := mustOpen(t, fpath, Options{})
	defer fl.Close()
	for i, rec := range recs {
		off, err := fl.Append(rec.Generation, rec.Version, rec.Ops)
		if err != nil {
			t.Fatal(err)
		}
		if off != offsets[i] {
			t.Fatalf("follower offset %d != primary offset %d at record %d", off, offsets[i], i)
		}
	}
	fchunk, _, err := fl.ReadAt(HeaderSize, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chunk, fchunk) {
		t.Fatal("follower WAL bytes diverge from primary")
	}
}

// TestReadAtBounds: caught-up reads return empty, out-of-range offsets
// error, and a tight max still returns at least one whole frame and
// never splits one.
func TestReadAtBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.wal")
	l, _ := mustOpen(t, path, Options{})
	defer l.Close()

	if chunk, end, err := l.ReadAt(HeaderSize, 1<<20); err != nil || chunk != nil || end != HeaderSize {
		t.Fatalf("empty log read = (%v, %d, %v)", chunk, end, err)
	}
	first, err := l.Append(0, 1, testOps())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, 2, testOps()); err != nil {
		t.Fatal(err)
	}

	// max=1 byte: the first frame still comes back whole, and only it.
	chunk, end, err := l.ReadAt(HeaderSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if end != first {
		t.Fatalf("tight read ended at %d, want first frame end %d", end, first)
	}
	if recs, err := DecodeFrames(chunk); err != nil || len(recs) != 1 {
		t.Fatalf("tight read decoded (%d recs, %v)", len(recs), err)
	}
	// Resume from the boundary: the second frame.
	chunk, end, err = l.ReadAt(first, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if end != l.Size() {
		t.Fatalf("resumed read ended at %d, want %d", end, l.Size())
	}
	if recs, err := DecodeFrames(chunk); err != nil || len(recs) != 1 || recs[0].Version != 2 {
		t.Fatalf("resumed read decoded (%+v, %v)", recs, err)
	}

	if _, _, err := l.ReadAt(0, 1); err == nil {
		t.Fatal("offset below header accepted")
	}
	if _, _, err := l.ReadAt(l.Size()+1, 1); err == nil {
		t.Fatal("offset past end accepted")
	}
}

// TestDecodeFramesRejectsPartial: the wire decoder has no torn-tail
// tolerance — any truncation or damage refuses the whole chunk.
func TestDecodeFramesRejectsPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	l, _ := mustOpen(t, path, Options{})
	defer l.Close()
	if _, err := l.Append(0, 1, testOps()); err != nil {
		t.Fatal(err)
	}
	chunk, _, err := l.ReadAt(HeaderSize, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(chunk); cut++ {
		if _, err := DecodeFrames(chunk[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	flipped := bytes.Clone(chunk)
	flipped[frameHeaderSize] ^= 0xff
	if _, err := DecodeFrames(flipped); err == nil {
		t.Fatal("flipped payload byte accepted")
	}
}

// TestChangedNotification: the Changed channel closes on append and on
// reset, in the grab-channel-then-check-size order that makes the
// long-poll race-free.
func TestChangedNotification(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _ := mustOpen(t, path, Options{})
	defer l.Close()

	ch := l.Changed()
	select {
	case <-ch:
		t.Fatal("Changed fired before any change")
	default:
	}
	if _, err := l.Append(0, 1, testOps()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Changed did not fire on append")
	}

	ch = l.Changed()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Changed did not fire on reset")
	}
}

// TestGroupCommitSharesSyncs: many concurrent appends inside one
// interval share fsyncs instead of paying one each — and the flusher
// does eventually make the window durable (Syncs advances, dirty
// clears).
func TestGroupCommitSharesSyncs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.wal")
	l, _ := mustOpen(t, path, Options{Policy: PolicyInterval, Interval: 10 * time.Millisecond})
	defer l.Close()

	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append(0, uint64(w*perWriter+i+1), testOps()); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		synced, dirty := l.syncs > 0, l.dirty
		l.mu.Unlock()
		if synced && !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never made the window durable")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("appends %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Syncs >= st.Appends/2 {
		t.Fatalf("group commit did not share syncs: %d syncs for %d appends", st.Syncs, st.Appends)
	}
}

// BenchmarkContendedAppend pits the two durable policies against each
// other under contended writers: group commit (interval) should issue
// far fewer fsyncs per append than always at the same record volume.
// Syncs-per-append is reported as a metric.
func BenchmarkContendedAppend(b *testing.B) {
	for _, policy := range []Policy{PolicyAlways, PolicyInterval} {
		b.Run(string(policy), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "bench.wal")
			l, _, err := Open(path, Options{Policy: policy, Interval: 5 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			ops := testOps()
			var next int64
			var mu sync.Mutex
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					mu.Lock()
					next++
					v := next
					mu.Unlock()
					if _, err := l.Append(0, uint64(v), ops); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := l.Stats()
			if st.Appends > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "syncs/append")
			}
		})
	}
}
