// Package wal implements the write-ahead log that makes live mutations
// durable between compactions (docs/WAL_FORMAT.md is the byte-level
// spec). The log is an append-only file of length-prefixed, CRC32-C
// framed records, each one acknowledged mutation batch stamped with the
// snapshot generation and delta version it produced.
//
// Durability contract: delta.Manager.Apply appends the batch here
// *before* the engine swap that makes it visible, so every acknowledged
// batch is in the log. On restart, Open scans the log, tolerates a torn
// final record (the one write that may have been racing the crash — it
// was never acknowledged) by truncating it away, and refuses a corrupt
// middle (bit rot or tampering under acknowledged records must fail
// loudly, never silently drop data). Replay of the returned records
// rebuilds the overlay exactly.
//
// Fsync policy tunes the ack-vs-throughput tradeoff:
//
//	always   — fsync before every acknowledgment; a crash (or power
//	           loss) loses nothing that was acknowledged.
//	interval — fsync at most once per configured interval (group
//	           commit); kill -9 loses nothing (the page cache survives
//	           the process), power loss may lose the last interval.
//	never    — rely on the OS writeback; cheapest, weakest.
//
// A failed or partial append is rolled back (the file is truncated to
// the pre-append offset) so the next append cannot land after garbage
// and forge a corrupt middle; when rollback itself fails the log is
// poisoned and every later append errors until the process restarts.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"banks/internal/delta"
	"banks/internal/graph"
)

// Magic identifies a WAL file; Version is the format version.
const (
	Magic   = "BANKSWAL"
	Version = 1
)

const (
	headerSize      = 16 // magic(8) + version(4) + reserved(4)
	frameHeaderSize = 8  // payloadLen(4) + crc32c(4)

	// HeaderSize is the file-header length — the offset of the first
	// record, and therefore the smallest valid read/replication offset.
	HeaderSize = headerSize

	// MaxPayload bounds one record's payload. A mutation batch is at most
	// a tenant's op cap of short strings; 16 MiB is far above any sane
	// batch and small enough that a forged length field cannot make the
	// reader allocate unboundedly.
	MaxPayload = 16 << 20
)

// Op kind codes on the wire (the delta.OpKind strings are not
// serialized; the codes below are the stable byte-level encoding).
const (
	kindInsertNode byte = 1
	kindInsertEdge byte = 2
	kindDeleteNode byte = 3
	kindDeleteEdge byte = 4
	kindInsertTerm byte = 5
	kindDeleteTerm byte = 6
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy is the fsync policy name.
type Policy string

const (
	PolicyAlways   Policy = "always"
	PolicyInterval Policy = "interval"
	PolicyNever    Policy = "never"
)

// ParsePolicy validates a policy name from a flag or config.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyAlways, PolicyInterval, PolicyNever:
		return Policy(s), nil
	}
	return "", fmt.Errorf("wal: unknown fsync policy %q (have always, interval, never)", s)
}

// DefaultInterval is the group-commit window of PolicyInterval when the
// caller does not set one.
const DefaultInterval = 100 * time.Millisecond

// Options configures a Log.
type Options struct {
	// Policy is the fsync policy; empty means PolicyAlways (durable by
	// default — callers opt into weaker guarantees explicitly).
	Policy Policy
	// Interval is the PolicyInterval group-commit window (0 means
	// DefaultInterval). Ignored by the other policies.
	Interval time.Duration
}

// Record is one logged mutation batch: the base generation and delta
// version it produced, plus the ops exactly as acknowledged.
type Record struct {
	Generation uint64
	Version    uint64
	Ops        []delta.Op
}

// Stats is a point-in-time sample of the log's position and activity.
type Stats struct {
	// Path is the log file path.
	Path string
	// Policy is the configured fsync policy.
	Policy Policy
	// SizeBytes is the current file size (header + valid frames) — the
	// read-your-writes offset of the newest record's end.
	SizeBytes int64
	// Records is the number of records currently in the log (replayed at
	// open plus appended since; reset by Reset).
	Records uint64
	// Appends counts successful appends since open; Syncs counts fsyncs
	// issued; Resets counts truncations (one per compaction).
	Appends, Syncs, Resets uint64
	// AppendFailures counts appends that errored (and were rolled back or
	// poisoned the log).
	AppendFailures uint64
}

// ErrCorrupt reports a record that is damaged in a way recovery must not
// paper over: a CRC or structural failure that is not the torn final
// write of a crash.
type ErrCorrupt struct {
	Offset int64
	Reason string
}

func (e *ErrCorrupt) Error() string {
	return fmt.Sprintf("wal: corrupt record at offset %d: %s", e.Offset, e.Reason)
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; appends serialize on one mutex (the delta manager already
// serializes mutations, the lock here keeps the file consistent even if
// a future caller does not).
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	policy   Policy
	interval time.Duration
	size     int64
	lastSync time.Time
	failed   error // non-nil once the log is poisoned

	// changed is closed (and replaced) whenever the log's contents move —
	// an append or a reset — so replication readers can long-poll the
	// tail without spinning.
	changed chan struct{}
	// dirty marks bytes written since the last fsync; the PolicyInterval
	// flusher goroutine syncs when it sees it set.
	dirty     bool
	flushStop chan struct{}
	flushDone chan struct{}

	records      uint64
	appends      uint64
	syncs        uint64
	resets       uint64
	appendErrors uint64
}

// Open opens (or creates) the log at path, scans any existing records
// and returns them for replay. A torn final record — the unacknowledged
// write a crash cut short — is truncated away; a corrupt record with
// valid data after it refuses with *ErrCorrupt. The returned log is
// positioned for appending.
func Open(path string, opts Options) (*Log, []Record, error) {
	if opts.Policy == "" {
		opts.Policy = PolicyAlways
	}
	if _, err := ParsePolicy(string(opts.Policy)); err != nil {
		return nil, nil, err
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}

	var recs []Record
	validEnd := int64(headerSize)
	if len(data) == 0 {
		// Fresh log: write and persist the header before the first append
		// can be acknowledged against it.
		hdr := make([]byte, headerSize)
		copy(hdr, Magic)
		binary.LittleEndian.PutUint32(hdr[8:], Version)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: write header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync header: %w", err)
		}
	} else {
		recs, validEnd, err = DecodeAll(data)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if validEnd < int64(len(data)) {
			// Torn tail: the final, never-acknowledged write. Drop it so
			// the next append starts on a clean boundary.
			if err := f.Truncate(validEnd); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("wal: sync after tail repair: %w", err)
			}
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek: %w", err)
	}
	l := &Log{
		f:        f,
		path:     path,
		policy:   opts.Policy,
		interval: opts.Interval,
		size:     validEnd,
		lastSync: time.Now(),
		changed:  make(chan struct{}),
		records:  uint64(len(recs)),
	}
	if l.policy == PolicyInterval {
		// Group commit: appends only mark the log dirty; this goroutine
		// issues at most one fsync per interval no matter how many
		// writers land in the window.
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop(l.flushStop)
	}
	return l, recs, nil
}

// flushLoop is PolicyInterval's group-commit engine: one fsync per
// interval covers every append that landed in the window. A failing
// sync poisons the log — the interval contract already concedes the
// last window to power loss, but a disk that cannot sync must not keep
// acknowledging writes.
// The stop channel is passed in rather than read from the field:
// stopFlusher nils l.flushStop for idempotence, and a select on a nil
// channel would block this loop forever.
func (l *Log) flushLoop(stop <-chan struct{}) {
	defer close(l.flushDone)
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.failed == nil {
				if err := l.syncLocked(); err != nil {
					l.failed = fmt.Errorf("group-commit sync failed: %w", err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// stopFlusher stops the group-commit goroutine (idempotent).
func (l *Log) stopFlusher() {
	l.mu.Lock()
	stop, done := l.flushStop, l.flushDone
	l.flushStop = nil
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Append logs one acknowledged-batch record and returns the file offset
// of its end (the read-your-writes durability token). Under
// PolicyAlways the record is fsync'd before Append returns; a sync or
// write failure rolls the file back to the pre-append offset and
// returns an error — the caller must not apply (or acknowledge) the
// batch.
func (l *Log) Append(generation, version uint64, ops []delta.Op) (int64, error) {
	payload, err := encodePayload(generation, version, ops)
	if err != nil {
		return 0, err
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		l.appendErrors++
		return 0, fmt.Errorf("wal: log is failed: %w", l.failed)
	}
	start := l.size
	if _, err := l.f.Write(frame); err != nil {
		l.appendErrors++
		l.rollback(start, err)
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size = start + int64(len(frame))

	switch l.policy {
	case PolicyAlways:
		if err := l.syncLocked(); err != nil {
			l.appendErrors++
			l.rollback(start, err)
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	case PolicyInterval:
		// Group commit: mark dirty and return; the flusher goroutine
		// issues one fsync per interval for every append in the window.
		l.dirty = true
	}
	l.records++
	l.appends++
	l.notifyLocked()
	return l.size, nil
}

// notifyLocked wakes every Changed waiter; must hold l.mu.
func (l *Log) notifyLocked() {
	close(l.changed)
	l.changed = make(chan struct{})
}

// Changed returns a channel that is closed the next time the log's
// contents change (an append or a reset). Grab the channel, check
// Size, then wait on the channel — the classic missed-wakeup-free
// long-poll order for tailing replicas.
func (l *Log) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}

// Size returns the current valid end offset — the offset the next
// append will be acknowledged at, and the exclusive upper bound for
// ReadAt.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// ReadAt reads whole frames starting at byte offset from (HeaderSize ≤
// from ≤ Size) and returns the raw frame bytes plus the offset of the
// end of the returned data. At most max bytes are returned, except
// that the first frame is always returned whole even if it alone
// exceeds max; (nil, from, nil) means the reader is caught up. The
// read is a pread under the append lock, so it can never observe a
// partial append or a pre-rollback state. This is the replication
// publisher's data source: the bytes are the canonical frame encoding,
// so a follower appending them locally reproduces the file
// byte-identically at identical offsets.
func (l *Log) ReadAt(from int64, max int) ([]byte, int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return nil, 0, fmt.Errorf("wal: log is failed: %w", l.failed)
	}
	if from < headerSize || from > l.size {
		return nil, 0, fmt.Errorf("wal: read offset %d out of range [%d, %d]", from, headerSize, l.size)
	}
	end := from
	var hdr [frameHeaderSize]byte
	for end < l.size {
		if _, err := l.f.ReadAt(hdr[:], end); err != nil {
			return nil, 0, fmt.Errorf("wal: read frame header at %d: %w", end, err)
		}
		payloadLen := int64(binary.LittleEndian.Uint32(hdr[:4]))
		frameEnd := end + frameHeaderSize + payloadLen
		if payloadLen > MaxPayload || frameEnd > l.size {
			return nil, 0, &ErrCorrupt{Offset: end, Reason: fmt.Sprintf("frame length %d does not land on the log's end %d", payloadLen, l.size)}
		}
		if end > from && frameEnd-from > int64(max) {
			break
		}
		end = frameEnd
	}
	if end == from {
		return nil, from, nil
	}
	buf := make([]byte, end-from)
	if _, err := l.f.ReadAt(buf, from); err != nil {
		return nil, 0, fmt.Errorf("wal: read %d bytes at %d: %w", len(buf), from, err)
	}
	return buf, end, nil
}

// rollback undoes a failed append so the file cannot carry a partial
// frame under later valid ones. If the truncate itself fails the log is
// poisoned: returning errors forever is safer than forging a corrupt
// middle.
func (l *Log) rollback(start int64, cause error) {
	if terr := l.f.Truncate(start); terr != nil {
		l.failed = fmt.Errorf("append failed (%v) and rollback failed (%v)", cause, terr)
		return
	}
	if _, serr := l.f.Seek(start, io.SeekStart); serr != nil {
		l.failed = fmt.Errorf("append failed (%v) and reseek failed (%v)", cause, serr)
		return
	}
	l.size = start
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs++
	l.lastSync = time.Now()
	l.dirty = false
	return nil
}

// Sync forces an fsync regardless of policy (used at graceful shutdown).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	return l.syncLocked()
}

// Reset empties the log after a compaction has made a new snapshot
// generation durable: every logged record is now redundant with the
// snapshot, so the file shrinks back to its header. The truncation is
// fsync'd before Reset returns.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if err := l.f.Truncate(headerSize); err != nil {
		l.failed = fmt.Errorf("reset truncate failed: %w", err)
		return l.failed
	}
	if _, err := l.f.Seek(headerSize, io.SeekStart); err != nil {
		l.failed = fmt.Errorf("reset seek failed: %w", err)
		return l.failed
	}
	l.size = headerSize
	l.records = 0
	if err := l.syncLocked(); err != nil {
		return fmt.Errorf("wal: sync after reset: %w", err)
	}
	l.resets++
	l.notifyLocked()
	return nil
}

// Stats samples the log.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Path:           l.path,
		Policy:         l.policy,
		SizeBytes:      l.size,
		Records:        l.records,
		Appends:        l.appends,
		Syncs:          l.syncs,
		Resets:         l.resets,
		AppendFailures: l.appendErrors,
	}
}

// Close stops the group-commit flusher, syncs (best effort — under
// PolicyNever nothing was promised, but a clean shutdown should not
// lose the tail) and closes the file.
func (l *Log) Close() error {
	l.stopFlusher()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed == nil {
		if err := l.f.Sync(); err == nil {
			l.syncs++
		}
	}
	return l.f.Close()
}

// DecodeAll parses a complete WAL image (header + frames). It returns
// the fully valid records, the byte offset up to which the image is
// valid, and an error only for damage that must not be papered over: a
// bad header, a corrupt record with data after it, a forged length, or
// a CRC-valid record that does not decode. A torn tail — an incomplete
// final frame, or a final frame whose CRC fails right at EOF (a
// partially persisted write) — is not an error: the records before it
// are returned and validEnd points at the torn frame's start.
func DecodeAll(data []byte) (recs []Record, validEnd int64, err error) {
	if len(data) < headerSize {
		return nil, 0, &ErrCorrupt{Offset: 0, Reason: fmt.Sprintf("file is %d bytes, header needs %d", len(data), headerSize)}
	}
	if string(data[:8]) != Magic {
		return nil, 0, &ErrCorrupt{Offset: 0, Reason: "bad magic"}
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, 0, &ErrCorrupt{Offset: 8, Reason: fmt.Sprintf("unsupported format version %d", v)}
	}

	off := int64(headerSize)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, nil
		}
		if len(rest) < frameHeaderSize {
			// Incomplete frame header: torn tail.
			return recs, off, nil
		}
		payloadLen := int64(binary.LittleEndian.Uint32(rest[0:]))
		if payloadLen > MaxPayload {
			return recs, off, &ErrCorrupt{Offset: off, Reason: fmt.Sprintf("forged length %d exceeds cap %d", payloadLen, MaxPayload)}
		}
		frameEnd := off + frameHeaderSize + payloadLen
		if frameEnd > int64(len(data)) {
			// Frame extends past EOF: torn tail.
			return recs, off, nil
		}
		payload := rest[frameHeaderSize : frameHeaderSize+payloadLen]
		wantCRC := binary.LittleEndian.Uint32(rest[4:])
		if crc32.Checksum(payload, castagnoli) != wantCRC {
			if frameEnd == int64(len(data)) {
				// Final frame, bad CRC: a write whose length metadata
				// persisted but whose data did not (power loss) — torn.
				return recs, off, nil
			}
			return recs, off, &ErrCorrupt{Offset: off, Reason: "CRC mismatch under later records"}
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			// The CRC matched, so these are the writer's bytes (or a
			// forged CRC): structural damage, never torn.
			return recs, off, &ErrCorrupt{Offset: off, Reason: derr.Error()}
		}
		recs = append(recs, rec)
		off = frameEnd
	}
}

// DecodeFrames parses a chunk of concatenated frames with no file
// header — the replication wire format ReadAt produces. Unlike
// DecodeAll there is no torn-tail tolerance: the publisher only ships
// whole frames, so an incomplete, oversized, CRC-failing, or
// structurally invalid frame is an error and the follower must drop
// the chunk and reconnect rather than apply a prefix of it.
func DecodeFrames(data []byte) ([]Record, error) {
	var recs []Record
	off := int64(0)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			return nil, &ErrCorrupt{Offset: off, Reason: fmt.Sprintf("incomplete frame header: %d bytes", len(rest))}
		}
		payloadLen := int64(binary.LittleEndian.Uint32(rest[0:]))
		if payloadLen > MaxPayload {
			return nil, &ErrCorrupt{Offset: off, Reason: fmt.Sprintf("forged length %d exceeds cap %d", payloadLen, MaxPayload)}
		}
		frameEnd := off + frameHeaderSize + payloadLen
		if frameEnd > int64(len(data)) {
			return nil, &ErrCorrupt{Offset: off, Reason: fmt.Sprintf("frame of %d bytes extends past chunk end %d", payloadLen, len(data))}
		}
		payload := rest[frameHeaderSize : frameHeaderSize+payloadLen]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:]) {
			return nil, &ErrCorrupt{Offset: off, Reason: "CRC mismatch"}
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return nil, &ErrCorrupt{Offset: off, Reason: err.Error()}
		}
		recs = append(recs, rec)
		off = frameEnd
	}
	return recs, nil
}

// encodePayload serializes one record payload canonically: the byte
// image is a pure function of (generation, version, ops), which is what
// lets the fuzz oracle round-trip decode→encode→compare.
func encodePayload(generation, version uint64, ops []delta.Op) ([]byte, error) {
	buf := make([]byte, 0, 64+32*len(ops))
	buf = binary.LittleEndian.AppendUint64(buf, generation)
	buf = binary.LittleEndian.AppendUint64(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ops)))
	for i, op := range ops {
		switch op.Kind {
		case delta.OpInsertNode:
			buf = append(buf, kindInsertNode)
			buf = appendString(buf, op.Table)
			buf = appendString(buf, op.Text)
		case delta.OpInsertEdge:
			buf = append(buf, kindInsertEdge)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.From))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.To))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(op.Weight))
			buf = binary.LittleEndian.AppendUint16(buf, uint16(op.EdgeType))
		case delta.OpDeleteNode:
			buf = append(buf, kindDeleteNode)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.Node))
		case delta.OpDeleteEdge:
			buf = append(buf, kindDeleteEdge)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.From))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.To))
		case delta.OpInsertTerm:
			buf = append(buf, kindInsertTerm)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.Node))
			buf = appendString(buf, op.Term)
		case delta.OpDeleteTerm:
			buf = append(buf, kindDeleteTerm)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(op.Node))
			buf = appendString(buf, op.Term)
		default:
			return nil, fmt.Errorf("wal: op %d: unknown kind %q", i, op.Kind)
		}
	}
	if len(buf) > MaxPayload {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds cap %d", len(buf), MaxPayload)
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// decodePayload is the strict inverse of encodePayload: any trailing
// bytes, short field, or unknown kind is an error (the CRC already
// vouched for the bytes, so a mismatch here is structural corruption).
func decodePayload(payload []byte) (Record, error) {
	d := decoder{buf: payload}
	var rec Record
	rec.Generation = d.u64()
	rec.Version = d.u64()
	n := d.u32()
	if d.err != nil {
		return Record{}, d.err
	}
	// Each op is at least 5 bytes; a forged count cannot force a large
	// allocation past this bound.
	if int64(n)*5 > int64(len(payload)) {
		return Record{}, fmt.Errorf("op count %d impossible for %d payload bytes", n, len(payload))
	}
	rec.Ops = make([]delta.Op, 0, n)
	for i := uint32(0); i < n; i++ {
		var op delta.Op
		switch kind := d.byte(); kind {
		case kindInsertNode:
			op.Kind = delta.OpInsertNode
			op.Table = d.str()
			op.Text = d.str()
		case kindInsertEdge:
			op.Kind = delta.OpInsertEdge
			op.From = graph.NodeID(d.u32())
			op.To = graph.NodeID(d.u32())
			op.Weight = math.Float64frombits(d.u64())
			op.EdgeType = graph.EdgeType(d.u16())
		case kindDeleteNode:
			op.Kind = delta.OpDeleteNode
			op.Node = graph.NodeID(d.u32())
		case kindDeleteEdge:
			op.Kind = delta.OpDeleteEdge
			op.From = graph.NodeID(d.u32())
			op.To = graph.NodeID(d.u32())
		case kindInsertTerm:
			op.Kind = delta.OpInsertTerm
			op.Node = graph.NodeID(d.u32())
			op.Term = d.str()
		case kindDeleteTerm:
			op.Kind = delta.OpDeleteTerm
			op.Node = graph.NodeID(d.u32())
			op.Term = d.str()
		default:
			if d.err == nil {
				d.err = fmt.Errorf("op %d: unknown kind %d", i, kind)
			}
		}
		if d.err != nil {
			return Record{}, d.err
		}
		rec.Ops = append(rec.Ops, op)
	}
	if len(d.buf) != 0 {
		return Record{}, fmt.Errorf("%d trailing bytes after %d ops", len(d.buf), n)
	}
	return rec, nil
}

// decoder consumes payload bytes with sticky error handling.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("payload truncated: want %d bytes, have %d", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) byte() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err == nil && int64(n) > int64(len(d.buf)) {
		d.err = fmt.Errorf("string length %d exceeds %d remaining payload bytes", n, len(d.buf))
		return ""
	}
	b := d.take(int(n))
	return string(b)
}
