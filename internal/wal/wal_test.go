package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"banks/internal/delta"
)

// testOps returns a batch exercising every op kind once.
func testOps() []delta.Op {
	return []delta.Op{
		{Kind: delta.OpInsertNode, Table: "paper", Text: "durable overlay search"},
		{Kind: delta.OpInsertEdge, From: 3, To: 7, Weight: 1.25, EdgeType: 2},
		{Kind: delta.OpDeleteNode, Node: 9},
		{Kind: delta.OpDeleteEdge, From: 1, To: 2},
		{Kind: delta.OpInsertTerm, Node: 4, Term: "steiner"},
		{Kind: delta.OpDeleteTerm, Node: 5, Term: "stale"},
	}
}

func mustOpen(t *testing.T, path string, opts Options) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

// TestRoundTrip pins the core contract: records appended and fsync'd come
// back from a reopen byte-exact, in order, with their generation/version
// stamps.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, recs := mustOpen(t, path, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	var lastOff int64 = headerSize
	for v := uint64(1); v <= 3; v++ {
		off, err := l.Append(7, v, testOps())
		if err != nil {
			t.Fatal(err)
		}
		if off <= lastOff {
			t.Fatalf("append %d: offset %d not past previous end %d", v, off, lastOff)
		}
		lastOff = off
	}
	st := l.Stats()
	if st.Records != 3 || st.Appends != 3 || st.SizeBytes != lastOff || st.Syncs < 3 {
		t.Fatalf("stats after 3 appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := mustOpen(t, path, Options{})
	defer l2.Close()
	if len(recs) != 3 {
		t.Fatalf("reopen returned %d records, want 3", len(recs))
	}
	want := testOps()
	for i, rec := range recs {
		if rec.Generation != 7 || rec.Version != uint64(i+1) {
			t.Fatalf("record %d stamped (%d,%d), want (7,%d)", i, rec.Generation, rec.Version, i+1)
		}
		if len(rec.Ops) != len(want) {
			t.Fatalf("record %d has %d ops, want %d", i, len(rec.Ops), len(want))
		}
		for j, op := range rec.Ops {
			if op != want[j] {
				t.Fatalf("record %d op %d: %+v != %+v", i, j, op, want[j])
			}
		}
	}
	if got := l2.Stats().SizeBytes; got != lastOff {
		t.Fatalf("reopened size %d, want %d", got, lastOff)
	}
}

// appendRaw tacks raw bytes onto the file — simulating the partial write
// of a crash (or corruption injected under existing records).
func appendRaw(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// writeLog creates a log with n acknowledged records and returns the
// valid end offset.
func writeLog(t *testing.T, path string, n int) int64 {
	t.Helper()
	l, _ := mustOpen(t, path, Options{})
	for v := 1; v <= n; v++ {
		if _, err := l.Append(0, uint64(v), testOps()); err != nil {
			t.Fatal(err)
		}
	}
	end := l.Stats().SizeBytes
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return end
}

// TestTornTailRecovery: the three shapes a crash mid-append can leave —
// an incomplete frame header, a frame cut short, and a full-length final
// frame whose payload bytes never persisted (bad CRC at exact EOF) — are
// all truncated away silently, keeping every acknowledged record.
func TestTornTailRecovery(t *testing.T) {
	frame := func() []byte {
		payload, err := encodePayload(0, 99, testOps())
		if err != nil {
			t.Fatal(err)
		}
		f := make([]byte, frameHeaderSize+len(payload))
		binary.LittleEndian.PutUint32(f[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(f[4:], crc32.Checksum(payload, castagnoli))
		copy(f[frameHeaderSize:], payload)
		return f
	}
	cases := []struct {
		name string
		torn func() []byte
	}{
		{"incomplete frame header", func() []byte { return frame()[:3] }},
		{"frame cut short", func() []byte { f := frame(); return f[:len(f)/2] }},
		{"payload bytes lost", func() []byte {
			f := frame()
			for i := frameHeaderSize; i < len(f); i++ {
				f[i] = 0
			}
			return f
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "t.wal")
			end := writeLog(t, path, 2)
			appendRaw(t, path, tc.torn())

			l, recs := mustOpen(t, path, Options{})
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want 2", len(recs))
			}
			if got := l.Stats().SizeBytes; got != end {
				t.Fatalf("tail not truncated: size %d, want %d", got, end)
			}
			// The repaired log must accept appends on the clean boundary.
			if _, err := l.Append(0, 3, testOps()); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if _, recs := mustOpen(t, path, Options{}); len(recs) != 3 {
				t.Fatalf("after repair + append: %d records, want 3", len(recs))
			}
		})
	}
}

// TestCorruptMiddleRefused: damage under acknowledged records — a CRC
// failure with valid data after it, a forged length, or a CRC-valid
// payload that does not decode — must refuse with *ErrCorrupt, never
// silently drop acknowledged batches.
func TestCorruptMiddleRefused(t *testing.T) {
	t.Run("bit flip under later records", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "t.wal")
		writeLog(t, path, 3)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[headerSize+frameHeaderSize+2] ^= 0xff // inside record 1's payload
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err = Open(path, Options{})
		var c *ErrCorrupt
		if !errors.As(err, &c) {
			t.Fatalf("corrupt middle: got %v, want *ErrCorrupt", err)
		}
	})
	t.Run("forged length", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "t.wal")
		writeLog(t, path, 1)
		huge := make([]byte, frameHeaderSize)
		binary.LittleEndian.PutUint32(huge, MaxPayload+1)
		appendRaw(t, path, huge)
		_, _, err := Open(path, Options{})
		var c *ErrCorrupt
		if !errors.As(err, &c) {
			t.Fatalf("forged length: got %v, want *ErrCorrupt", err)
		}
	})
	t.Run("CRC-valid garbage payload", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "t.wal")
		writeLog(t, path, 1)
		payload := []byte("not a record payload")
		f := make([]byte, frameHeaderSize+len(payload))
		binary.LittleEndian.PutUint32(f[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(f[4:], crc32.Checksum(payload, castagnoli))
		copy(f[frameHeaderSize:], payload)
		appendRaw(t, path, f)
		_, _, err := Open(path, Options{})
		var c *ErrCorrupt
		if !errors.As(err, &c) {
			t.Fatalf("undecodable payload: got %v, want *ErrCorrupt", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "t.wal")
		if err := os.WriteFile(path, []byte("NOTBANKS\x01\x00\x00\x00\x00\x00\x00\x00"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Open(path, Options{})
		var c *ErrCorrupt
		if !errors.As(err, &c) {
			t.Fatalf("bad magic: got %v, want *ErrCorrupt", err)
		}
	})
	t.Run("unsupported version", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "t.wal")
		hdr := make([]byte, headerSize)
		copy(hdr, Magic)
		binary.LittleEndian.PutUint32(hdr[8:], Version+1)
		if err := os.WriteFile(path, hdr, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, err := Open(path, Options{})
		var c *ErrCorrupt
		if !errors.As(err, &c) {
			t.Fatalf("future version: got %v, want *ErrCorrupt", err)
		}
	})
}

// TestReset pins the post-compaction truncation: the log shrinks to its
// header, loses its records, and keeps accepting appends.
func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := mustOpen(t, path, Options{})
	defer l.Close()
	if _, err := l.Append(0, 1, testOps()); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SizeBytes != headerSize || st.Records != 0 || st.Resets != 1 {
		t.Fatalf("stats after reset: %+v", st)
	}
	if _, err := l.Append(1, 1, testOps()); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpen(t, path, Options{})
	if len(recs) != 1 || recs[0].Generation != 1 {
		t.Fatalf("post-reset reopen: %+v", recs)
	}
}

// TestAppendFailurePoisons: when the file is gone from under the log,
// Append must fail, count the failure, and — rollback being impossible —
// poison the log so no later append can land after garbage.
func TestAppendFailurePoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := mustOpen(t, path, Options{})
	l.f.Close() // simulate the descriptor dying under the log
	if _, err := l.Append(0, 1, testOps()); err == nil {
		t.Fatal("append on a dead file succeeded")
	}
	if _, err := l.Append(0, 2, testOps()); err == nil {
		t.Fatal("append on a poisoned log succeeded")
	}
	st := l.Stats()
	if st.AppendFailures != 2 || st.Appends != 0 {
		t.Fatalf("failure accounting: %+v", st)
	}
}

// TestEncodeRejectsUnknownKind: an op the format cannot represent must be
// refused before any bytes hit the file.
func TestEncodeRejectsUnknownKind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.wal")
	l, _ := mustOpen(t, path, Options{})
	defer l.Close()
	if _, err := l.Append(0, 1, []delta.Op{{Kind: "upsert_node"}}); err == nil {
		t.Fatal("unknown kind encoded")
	}
	if st := l.Stats(); st.SizeBytes != headerSize {
		t.Fatalf("rejected op wrote bytes: %+v", st)
	}
}

// TestPolicies: interval mode group-commits (far fewer syncs than
// appends); never mode syncs only at close; parse rejects junk.
func TestPolicies(t *testing.T) {
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted junk")
	}
	path := filepath.Join(t.TempDir(), "i.wal")
	l, _ := mustOpen(t, path, Options{Policy: PolicyInterval, Interval: time.Hour})
	for v := 1; v <= 50; v++ {
		if _, err := l.Append(0, uint64(v), testOps()); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("hour-wide group commit synced %d times mid-run", st.Syncs)
	}
	l.Close()

	path = filepath.Join(t.TempDir(), "n.wal")
	l, _ = mustOpen(t, path, Options{Policy: PolicyNever})
	if _, err := l.Append(0, 1, testOps()); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("policy never synced %d times", st.Syncs)
	}
	l.Close()
}

// FuzzWALReplay feeds arbitrary bytes to the recovery scanner. The
// contract under attack: any input either yields records plus a valid
// end, or *ErrCorrupt — never a panic or an oversized allocation. Every
// record handed back for replay must re-encode byte-exactly to the
// payload it was decoded from (the canonical-encoding oracle), and
// truncating the image at validEnd must yield a clean log that returns
// the same records.
func FuzzWALReplay(f *testing.F) {
	image := func(tamper func([]byte) []byte) []byte {
		buf := make([]byte, headerSize)
		copy(buf, Magic)
		binary.LittleEndian.PutUint32(buf[8:], Version)
		for v := uint64(1); v <= 2; v++ {
			payload, err := encodePayload(3, v, testOps())
			if err != nil {
				f.Fatal(err)
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
			buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
			buf = append(buf, payload...)
		}
		if tamper != nil {
			buf = tamper(buf)
		}
		return buf
	}
	f.Add(image(nil))
	f.Add(image(func(b []byte) []byte { return b[:len(b)-5] })) // torn tail
	f.Add(image(func(b []byte) []byte { b[headerSize+frameHeaderSize] ^= 0xff; return b }))
	f.Add(image(func(b []byte) []byte { // forged length
		binary.LittleEndian.PutUint32(b[headerSize:], MaxPayload+1)
		return b
	}))
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validEnd, err := DecodeAll(data)
		if err != nil {
			var c *ErrCorrupt
			if !errors.As(err, &c) {
				t.Fatalf("non-ErrCorrupt error: %v", err)
			}
			return
		}
		if validEnd < headerSize || validEnd > int64(len(data)) {
			t.Fatalf("validEnd %d outside [%d,%d]", validEnd, headerSize, len(data))
		}
		// Canonical-encoding oracle: each returned record re-encodes to
		// exactly the payload bytes it came from.
		off := int64(headerSize)
		for i, rec := range recs {
			payloadLen := int64(binary.LittleEndian.Uint32(data[off:]))
			payload := data[off+frameHeaderSize : off+frameHeaderSize+payloadLen]
			enc, err := encodePayload(rec.Generation, rec.Version, rec.Ops)
			if err != nil {
				t.Fatalf("record %d does not re-encode: %v", i, err)
			}
			if string(enc) != string(payload) {
				t.Fatalf("record %d: decode/encode not a fixed point", i)
			}
			if math.MaxInt32 < len(rec.Ops) {
				t.Fatalf("record %d claims %d ops", i, len(rec.Ops))
			}
			off += frameHeaderSize + payloadLen
		}
		if off != validEnd {
			t.Fatalf("records cover %d bytes, validEnd %d", off, validEnd)
		}
		// Truncating at validEnd is exactly the torn-tail repair Open
		// performs: it must yield the same records with nothing torn.
		recs2, end2, err := DecodeAll(data[:validEnd])
		if err != nil || end2 != validEnd || len(recs2) != len(recs) {
			t.Fatalf("repaired image: %d records end %d err %v, want %d records end %d",
				len(recs2), end2, err, len(recs), validEnd)
		}
	})
}
