// Differential proof of the sharded serving tier's correctness claim:
// a component-closed partition (internal/shard), searched per shard and
// merged with the canonical recipe (MergeTopK), reproduces the
// single-node answer list bit-for-bit — order, scores, float bits.
//
// Scope of the claim, stated precisely:
//
//   - On a connected corpus (one component — the golden corpus here, and
//     the giant component that dominates real datasets) the partition is
//     trivially exact for every algorithm: all answers live on one shard
//     and merge is the identity.
//   - Across components, bidirectional search is exact in every case we
//     test: its iterator frontier is score-ordered globally, so isolating
//     components cannot reorder or change what it emits.
//   - The backward variants (SIBackward, MIBackward) are NOT exactly
//     shardable on multi-component data in general: their heap
//     tie-breaking interleaves across components, which can flip rotation
//     choices and (under truncation, k < total answers) admit different
//     members into the top-k. The sharded tier therefore guarantees
//     bit-identity per connected component, which on component-closed
//     shards is the whole answer for connected data. docs/SERVING.md
//     documents this envelope.
package banks_test

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"banks"
	"banks/internal/graph"
	"banks/internal/relational"
	"banks/internal/shard"
)

// islandsDB builds a deterministic bibliography database with three
// disjoint islands (no FK crosses islands) sharing query keywords.
func islandsDB(t testing.TB) *banks.DB {
	t.Helper()
	db := relational.NewDatabase()
	author, _ := db.CreateTable("author", []string{"name"}, nil)
	conf, _ := db.CreateTable("conference", []string{"name"}, nil)
	paper, _ := db.CreateTable("paper", []string{"title"}, []relational.FK{{Name: "conf", RefTable: "conference"}})
	writes, _ := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})

	// Island 1: the golden corpus verbatim.
	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	author.Append([]string{"Jeffrey Ullman"}, nil)
	author.Append([]string{"Michael Stonebraker"}, nil)
	conf.Append([]string{"VLDB"}, nil)
	conf.Append([]string{"SIGMOD"}, nil)
	paper.Append([]string{"Transaction Recovery Principles"}, []int32{0})
	paper.Append([]string{"Access Path Selection"}, []int32{1})
	paper.Append([]string{"Database System Concepts"}, []int32{0})
	paper.Append([]string{"Query Optimization Survey"}, []int32{1})
	paper.Append([]string{"Distributed Transaction Management"}, []int32{0})
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{1, 1})
	writes.Append(nil, []int32{2, 2})
	writes.Append(nil, []int32{3, 3})
	writes.Append(nil, []int32{0, 4})
	writes.Append(nil, []int32{1, 4})

	// Island 2: different shape, shares "gray", "transaction", "database".
	author.Append([]string{"Elaine Gray"}, nil)                         // author[4]
	author.Append([]string{"Ada Codd"}, nil)                            // author[5]
	conf.Append([]string{"ICDE"}, nil)                                  // conference[2]
	paper.Append([]string{"Transaction Logs in Practice"}, []int32{2})  // paper[5]
	paper.Append([]string{"Database Sharding Techniques"}, []int32{2})  // paper[6]
	paper.Append([]string{"Gray Box Testing of Databases"}, []int32{2}) // paper[7]
	writes.Append(nil, []int32{4, 5})
	writes.Append(nil, []int32{4, 6})
	writes.Append(nil, []int32{5, 6})
	writes.Append(nil, []int32{5, 7})

	// Island 3: small, shares "transaction" and "query".
	author.Append([]string{"Hector Molina"}, nil)                            // author[6]
	conf.Append([]string{"EDBT"}, nil)                                       // conference[3]
	paper.Append([]string{"Sagas and Long Transaction Queries"}, []int32{3}) // paper[8]
	writes.Append(nil, []int32{6, 8})

	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	bdb, err := banks.Build(db, banks.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return bdb
}

// renderAnswer formats every bit that defines an answer: IDs, the exact
// float64 bit patterns of all scores and path weights, and the tree
// structure. Two answers render equal iff they are bit-identical.
func renderAnswer(a *banks.Answer) string {
	return fmt.Sprintf("root=%d score=%x edge=%x node=%x nodes=%v edges=%v kw=%v pw=%x",
		a.Root, math.Float64bits(a.Score), math.Float64bits(a.EdgeScore), math.Float64bits(a.NodeScore),
		a.Nodes, a.Edges, a.KeywordNodes, floatBits(a.PathWeights))
}

func floatBits(fs []float64) []uint64 {
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = math.Float64bits(f)
	}
	return out
}

// shardDBs partitions db into n component-closed shard DBs in memory.
func shardDBs(t testing.TB, db *banks.DB, n int) []*banks.DB {
	t.Helper()
	a, err := shard.Partition(db.Graph, n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*banks.DB, n)
	for s := 0; s < n; s++ {
		g, ix, _, err := shard.Build(db.Graph, db.Index, a, s)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		out[s] = &banks.DB{Graph: g, Index: ix, Mapping: db.Mapping, EdgeTypes: db.EdgeTypes}
	}
	return out
}

// assertShardedIdentical runs one query on the single-node DB and on
// every shard, merges, and requires bit-identity.
func assertShardedIdentical(t *testing.T, db *banks.DB, shards []*banks.DB, query string, algo banks.Algorithm, k int) {
	t.Helper()
	name := fmt.Sprintf("%s/%s/k=%d", query, algo, k)
	opts := banks.Options{K: k}
	single, err := db.Search(query, algo, opts)
	if err != nil {
		t.Fatalf("%s: single: %v", name, err)
	}
	lists := make([][]*banks.Answer, len(shards))
	for s, sdb := range shards {
		res, err := sdb.Search(query, algo, opts)
		if err != nil {
			t.Fatalf("%s: shard %d: %v", name, s, err)
		}
		lists[s] = res.Answers
	}
	merged := banks.MergeTopK(k, lists...)
	if len(merged) != len(single.Answers) {
		t.Errorf("%s: got %d merged answers, single-node %d", name, len(merged), len(single.Answers))
		return
	}
	for i := range merged {
		got, want := renderAnswer(merged[i]), renderAnswer(single.Answers[i])
		if got != want {
			t.Errorf("%s: answer %d differs:\n  merged: %s\n  single: %s", name, i, got, want)
		}
	}
}

// TestShardPartitionComponentClosed pins the partition invariant the
// whole exactness argument rests on: every connected component lands on
// exactly one shard, and every node is owned by exactly one shard.
func TestShardPartitionComponentClosed(t *testing.T) {
	db := islandsDB(t)
	a, err := shard.Partition(db.Graph, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Components != 3 {
		t.Fatalf("expected 3 components, got %d", a.Components)
	}
	perShard := 0
	for _, c := range a.ComponentsPerShard {
		perShard += c
	}
	if perShard != a.Components {
		t.Errorf("components per shard sum to %d, want %d", perShard, a.Components)
	}
	// Connectivity never crosses shards: both endpoints of every edge
	// must be assigned to the same shard.
	g := db.Graph
	for u := 0; u < g.NumNodes(); u++ {
		for _, h := range g.Neighbors(graph.NodeID(u)) {
			if a.Shard[u] != a.Shard[h.To] {
				t.Fatalf("edge %d-%d crosses shards %d and %d", u, h.To, a.Shard[u], a.Shard[h.To])
			}
		}
	}
}

// TestShardBuildClosure pins the shard-DB construction invariants: full
// node-indexed arrays (global IDs, global MaxPrestige), adjacency and
// postings exactly restricted to owned nodes.
func TestShardBuildClosure(t *testing.T) {
	db := islandsDB(t)
	a, err := shard.Partition(db.Graph, 3)
	if err != nil {
		t.Fatal(err)
	}
	totalNodesWithEdges := 0
	for s := 0; s < 3; s++ {
		g, ix, meta, err := shard.Build(db.Graph, db.Index, a, s)
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if g.NumNodes() != db.Graph.NumNodes() {
			t.Errorf("shard %d: %d nodes, want full array %d", s, g.NumNodes(), db.Graph.NumNodes())
		}
		if g.MaxPrestige() != db.Graph.MaxPrestige() {
			t.Errorf("shard %d: max prestige %v, want global %v", s, g.MaxPrestige(), db.Graph.MaxPrestige())
		}
		if meta.Shard != uint32(s) || meta.NumShards != 3 {
			t.Errorf("shard %d: meta says %d of %d", s, meta.Shard, meta.NumShards)
		}
		if meta.DuplicatedEdges != 0 {
			t.Errorf("shard %d: %d duplicated edges, want 0 (component-closed)", s, meta.DuplicatedEdges)
		}
		owned := a.Owned(s)
		for u := 0; u < g.NumNodes(); u++ {
			deg := len(g.Neighbors(graph.NodeID(u)))
			if owned[u] && deg != len(db.Graph.Neighbors(graph.NodeID(u))) {
				t.Fatalf("shard %d: owned node %d degree %d, want %d", s, u, deg, len(db.Graph.Neighbors(graph.NodeID(u))))
			}
			if !owned[u] && deg != 0 {
				t.Fatalf("shard %d: foreign node %d has %d edges", s, u, deg)
			}
			if deg > 0 {
				totalNodesWithEdges++
			}
		}
		// Postings only reference owned nodes; dictionaries stay whole.
		if ix.NumTerms() != db.Index.NumTerms() {
			t.Errorf("shard %d: %d terms, want full dictionary %d", s, ix.NumTerms(), db.Index.NumTerms())
		}
		flat, err := ix.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range flat.Postings {
			if !owned[u] {
				t.Fatalf("shard %d: posting references foreign node %d", s, u)
			}
		}
	}
}

// TestShardedGoldenDifferential is the acceptance differential: the
// golden corpus is connected, so the sharded deployment must reproduce
// the single-node answers bit-for-bit for every algorithm. It runs
// through the real file path — shard files written by shard.WriteFiles,
// reopened as snapshots — not an in-memory shortcut.
func TestShardedGoldenDifferential(t *testing.T) {
	db := goldenDB(t)
	const nshards = 3
	base := filepath.Join(t.TempDir(), "golden.snap")
	stats, err := shard.WriteFiles(base, nshards, db.Graph, db.Index, db.Mapping, db.EdgeTypes)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != nshards {
		t.Fatalf("got %d shard stats, want %d", len(stats), nshards)
	}
	shards := make([]*banks.DB, nshards)
	for s := 0; s < nshards; s++ {
		sdb, err := banks.OpenSnapshot(shard.FilePath(base, s, nshards))
		if err != nil {
			t.Fatalf("open shard %d: %v", s, err)
		}
		defer sdb.Close()
		if sdb.ShardInfo() == nil {
			t.Fatalf("shard %d snapshot carries no shard meta", s)
		}
		shards[s] = sdb
	}

	queries := []string{"gray transaction", "database query", "selinger vldb", "transaction"}
	for _, q := range queries {
		for _, algo := range banks.Algorithms() {
			for _, k := range []int{3, 10} {
				assertShardedIdentical(t, db, shards, q, algo, k)
			}
		}
	}
}

// TestShardedBidirectionalMultiComponent extends the exactness claim for
// the paper's main algorithm across disjoint components: bidirectional
// search merges bit-identically even when answers come from different
// islands on different shards.
func TestShardedBidirectionalMultiComponent(t *testing.T) {
	db := islandsDB(t)
	shards := shardDBs(t, db, 3)
	queries := []string{"gray transaction", "database query", "transaction", "selinger vldb", "sharding gray"}
	for _, q := range queries {
		for _, k := range []int{3, 10} {
			assertShardedIdentical(t, db, shards, q, banks.Bidirectional, k)
		}
	}
}

// TestShardSingleShardIdentity: with n=1 every algorithm is trivially
// exact even on multi-component data — the "partition" is the whole
// graph and the merge is a no-op reorder. This pins that MergeTopK never
// perturbs a single complete result list.
func TestShardSingleShardIdentity(t *testing.T) {
	db := islandsDB(t)
	shards := shardDBs(t, db, 1)
	for _, algo := range banks.Algorithms() {
		assertShardedIdentical(t, db, shards, "gray transaction", algo, 10)
	}
}
