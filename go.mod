module banks

go 1.24
