// Benchmarks regenerating each table and figure of the paper's evaluation
// (§5) at laptop scale, one testing.B target per artifact:
//
//   - Figure 5 (sample-query table): BenchmarkFig5Query* and
//     BenchmarkFig5SparseLB* run the per-query measurements;
//   - Figure 6(a) (MI/SI vs keyword count): BenchmarkFig6a*;
//   - Figure 6(b) (SI/Bidirectional): BenchmarkFig6b*;
//   - Figure 6(c) (join-order/selectivity combos): BenchmarkFig6c*;
//   - §5.7 recall/precision: BenchmarkRecallPrecision;
//   - §4.4 worked example: BenchmarkFigure4 (in internal/core);
//   - §5.1 graph footprint: BenchmarkGraphFootprint.
//
// Absolute durations depend on the machine; the ratios reported in
// EXPERIMENTS.md come from cmd/experiments, which runs the same harness at
// a larger scale.
package banks_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"banks"
	"banks/internal/datagen"
	"banks/internal/experiments"
	"banks/internal/sparse"
	"banks/internal/workload"
)

// benchCfg keeps `go test -bench=.` runs short; cmd/experiments uses the
// bigger default configuration.
var benchCfg = experiments.Config{Factor: 0.1, QueriesPerCell: 2, K: 10, MaxNodes: 120_000, Seed: 42}

var benchEnvOnce sync.Once
var benchEnv *experiments.Env

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() {
		e, err := experiments.NewEnv("dblp", benchCfg.Factor)
		if err != nil {
			panic(err)
		}
		benchEnv = e
	})
	return benchEnv
}

// benchQuery memoizes one workload query per shape.
var benchQueries sync.Map

func sizeFiveQuery(b *testing.B, nk int, class workload.OriginClass) *workload.Query {
	b.Helper()
	key := [2]int{nk, int(class)}
	if q, ok := benchQueries.Load(key); ok {
		return q.(*workload.Query)
	}
	e := env(b)
	rng := rand.New(rand.NewSource(benchCfg.Seed))
	for tries := 0; tries < 3000; tries++ {
		if q, ok := e.Gen.SizeFive(rng, nk, class); ok {
			benchQueries.Store(key, q)
			return q
		}
	}
	b.Fatalf("could not generate %d-keyword %v query", nk, class)
	return nil
}

func comboQuery(b *testing.B, combo [4]datagen.Band) *workload.Query {
	b.Helper()
	if q, ok := benchQueries.Load(combo); ok {
		return q.(*workload.Query)
	}
	e := env(b)
	rng := rand.New(rand.NewSource(benchCfg.Seed))
	q, ok := e.Gen.Combo(rng, combo)
	if !ok {
		b.Fatalf("no combo query for %v", combo)
	}
	benchQueries.Store(combo, q)
	return q
}

func runSearch(b *testing.B, q *workload.Query, algo banks.Algorithm) {
	b.Helper()
	e := env(b)
	db := &banks.DB{Graph: e.Built.Graph, Index: e.Built.Index, Mapping: e.Built.Mapping, EdgeTypes: e.Built.EdgeTypes, Source: e.DS.DB}
	opts := banks.Options{K: benchCfg.K, MaxNodes: benchCfg.MaxNodes}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.SearchNodes(q.Keywords, algo, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

// --- Figure 5: sample queries (representative rows) ---

func BenchmarkFig5QueryDQ1Bidirectional(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 2, workload.OriginSmall), banks.Bidirectional)
}

func BenchmarkFig5QueryDQ1SIBackward(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 2, workload.OriginSmall), banks.SIBackward)
}

func BenchmarkFig5QueryDQ1MIBackward(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 2, workload.OriginSmall), banks.MIBackward)
}

func BenchmarkFig5QueryDQ7Bidirectional(b *testing.B) {
	T, L := datagen.BandTiny, datagen.BandLarge
	runSearch(b, comboQuery(b, [4]datagen.Band{T, T, L, L}), banks.Bidirectional)
}

func BenchmarkFig5QueryDQ7SIBackward(b *testing.B) {
	T, L := datagen.BandTiny, datagen.BandLarge
	runSearch(b, comboQuery(b, [4]datagen.Band{T, T, L, L}), banks.SIBackward)
}

func BenchmarkFig5QueryDQ7MIBackward(b *testing.B) {
	T, L := datagen.BandTiny, datagen.BandLarge
	runSearch(b, comboQuery(b, [4]datagen.Band{T, T, L, L}), banks.MIBackward)
}

func BenchmarkFig5SparseLBDQ1(b *testing.B) {
	q := sizeFiveQuery(b, 2, workload.OriginSmall)
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.Run(e.DS.DB, q.Terms, q.AnswerSize, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5SparseLBDQ7(b *testing.B) {
	T, L := datagen.BandTiny, datagen.BandLarge
	q := comboQuery(b, [4]datagen.Band{T, T, L, L})
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparse.Run(e.DS.DB, q.Terms, q.AnswerSize, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6(a): MI vs SI across keyword counts and origin classes ---

func BenchmarkFig6aK2SmallMI(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 2, workload.OriginSmall), banks.MIBackward)
}

func BenchmarkFig6aK2SmallSI(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 2, workload.OriginSmall), banks.SIBackward)
}

func BenchmarkFig6aK4LargeMI(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 4, workload.OriginLarge), banks.MIBackward)
}

func BenchmarkFig6aK4LargeSI(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 4, workload.OriginLarge), banks.SIBackward)
}

// --- Figure 6(b): SI vs Bidirectional ---

func BenchmarkFig6bK3SmallSI(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 3, workload.OriginSmall), banks.SIBackward)
}

func BenchmarkFig6bK3SmallBidirectional(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 3, workload.OriginSmall), banks.Bidirectional)
}

func BenchmarkFig6bK5LargeSI(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 5, workload.OriginLarge), banks.SIBackward)
}

func BenchmarkFig6bK5LargeBidirectional(b *testing.B) {
	runSearch(b, sizeFiveQuery(b, 5, workload.OriginLarge), banks.Bidirectional)
}

// --- Figure 6(c): selectivity-band combos ---

func fig6cBench(b *testing.B, combo [4]datagen.Band, algo banks.Algorithm) {
	runSearch(b, comboQuery(b, combo), algo)
}

func BenchmarkFig6cTTTTSI(b *testing.B) {
	T := datagen.BandTiny
	fig6cBench(b, [4]datagen.Band{T, T, T, T}, banks.SIBackward)
}

func BenchmarkFig6cTTTTBidirectional(b *testing.B) {
	T := datagen.BandTiny
	fig6cBench(b, [4]datagen.Band{T, T, T, T}, banks.Bidirectional)
}

func BenchmarkFig6cTTTLSI(b *testing.B) {
	T, L := datagen.BandTiny, datagen.BandLarge
	fig6cBench(b, [4]datagen.Band{T, T, T, L}, banks.SIBackward)
}

func BenchmarkFig6cTTTLBidirectional(b *testing.B) {
	T, L := datagen.BandTiny, datagen.BandLarge
	fig6cBench(b, [4]datagen.Band{T, T, T, L}, banks.Bidirectional)
}

func BenchmarkFig6cMMMMSI(b *testing.B) {
	M := datagen.BandMedium
	fig6cBench(b, [4]datagen.Band{M, M, M, M}, banks.SIBackward)
}

func BenchmarkFig6cMMMMBidirectional(b *testing.B) {
	M := datagen.BandMedium
	fig6cBench(b, [4]datagen.Band{M, M, M, M}, banks.Bidirectional)
}

// --- §5.7 recall/precision: one full measured query per iteration ---

func BenchmarkRecallPrecision(b *testing.B) {
	e := env(b)
	q := sizeFiveQuery(b, 3, workload.OriginSmall)
	db := &banks.DB{Graph: e.Built.Graph, Index: e.Built.Index, Mapping: e.Built.Mapping, EdgeTypes: e.Built.EdgeTypes, Source: e.DS.DB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.SearchNodes(q.Keywords, banks.Bidirectional, banks.Options{K: benchCfg.K})
		if err != nil {
			b.Fatal(err)
		}
		m := experiments.Measure(res, q)
		if m.Found == 0 {
			b.Fatal("relevant answer not found")
		}
	}
}

// --- Engine throughput: serial vs worker-pool fan-out ---
//
// BenchmarkSearchSerial and BenchmarkSearchParallel run the same mixed
// query stream; on a machine with ≥4 cores the 4-worker variant should
// show ≥2x the query throughput (≤½ the ns/op) of the serial run. On a
// single-core machine the two converge — the pool adds no speedup without
// parallel hardware. BenchmarkSearchCached shows the LRU result cache on a
// repeating stream.

var throughputQueries = []string{
	"database transaction",
	"index spatial",
	"concurrency recovery",
	"graph mining author",
	"storage optimization",
	"relational join",
}

func throughputDB(b *testing.B) *banks.DB {
	e := env(b)
	return &banks.DB{Graph: e.Built.Graph, Index: e.Built.Index, Mapping: e.Built.Mapping, EdgeTypes: e.Built.EdgeTypes, Source: e.DS.DB}
}

func BenchmarkSearchSerial(b *testing.B) {
	db := throughputDB(b)
	opts := banks.Options{K: benchCfg.K, MaxNodes: benchCfg.MaxNodes}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Search(throughputQueries[i%len(throughputQueries)], banks.Bidirectional, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkSearchParallel(b *testing.B, workers int) {
	db := throughputDB(b)
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: workers, CacheSize: -1})
	if err != nil {
		b.Fatal(err)
	}
	opts := banks.Options{K: benchCfg.K, MaxNodes: benchCfg.MaxNodes}
	batch := make([]banks.BatchQuery, b.N)
	for i := range batch {
		batch[i] = banks.BatchQuery{Query: throughputQueries[i%len(throughputQueries)], Algo: banks.Bidirectional, Opts: opts}
	}
	b.ReportAllocs()
	b.ResetTimer()
	results, errs := eng.SearchBatch(context.Background(), batch)
	b.StopTimer()
	for i := range results {
		if errs[i] != nil {
			b.Fatal(errs[i])
		}
	}
}

// BenchmarkSearchParallel is the acceptance benchmark: 4 workers vs
// BenchmarkSearchSerial.
func BenchmarkSearchParallel(b *testing.B)  { benchmarkSearchParallel(b, 4) }
func BenchmarkSearchParallel2(b *testing.B) { benchmarkSearchParallel(b, 2) }
func BenchmarkSearchParallel8(b *testing.B) { benchmarkSearchParallel(b, 8) }

func BenchmarkSearchCached(b *testing.B) {
	db := throughputDB(b)
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	opts := banks.Options{K: benchCfg.K, MaxNodes: benchCfg.MaxNodes}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(ctx, throughputQueries[i%len(throughputQueries)], banks.Bidirectional, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.1: in-memory graph footprint and build cost ---

func BenchmarkGraphFootprint(b *testing.B) {
	e := env(b)
	g := e.Built.Graph
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		u := banks.NodeID(i % g.NumNodes())
		for _, h := range g.Neighbors(u) {
			sum += h.WOut
		}
	}
	_ = sum
}

// --- Ablation sweep: one µ variant per iteration ---

func BenchmarkAblationMuDefault(b *testing.B) {
	q := comboQuery(b, [4]datagen.Band{datagen.BandTiny, datagen.BandTiny, datagen.BandLarge, datagen.BandLarge})
	e := env(b)
	db := &banks.DB{Graph: e.Built.Graph, Index: e.Built.Index, Mapping: e.Built.Mapping, EdgeTypes: e.Built.EdgeTypes, Source: e.DS.DB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SearchNodes(q.Keywords, banks.Bidirectional, banks.Options{K: benchCfg.K, Mu: 0.5, MaxNodes: benchCfg.MaxNodes}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMuHigh(b *testing.B) {
	q := comboQuery(b, [4]datagen.Band{datagen.BandTiny, datagen.BandTiny, datagen.BandLarge, datagen.BandLarge})
	e := env(b)
	db := &banks.DB{Graph: e.Built.Graph, Index: e.Built.Index, Mapping: e.Built.Mapping, EdgeTypes: e.Built.EdgeTypes, Source: e.DS.DB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SearchNodes(q.Keywords, banks.Bidirectional, banks.Options{K: benchCfg.K, Mu: 0.8, MaxNodes: benchCfg.MaxNodes}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStrictBound(b *testing.B) {
	q := comboQuery(b, [4]datagen.Band{datagen.BandTiny, datagen.BandTiny, datagen.BandLarge, datagen.BandLarge})
	e := env(b)
	db := &banks.DB{Graph: e.Built.Graph, Index: e.Built.Index, Mapping: e.Built.Mapping, EdgeTypes: e.Built.EdgeTypes, Source: e.DS.DB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.SearchNodes(q.Keywords, banks.Bidirectional, banks.Options{K: benchCfg.K, StrictBound: true, MaxNodes: benchCfg.MaxNodes}); err != nil {
			b.Fatal(err)
		}
	}
}
