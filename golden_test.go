// Golden regression tests: they pin the exact top-k output (root, score,
// keyword leaves) of every algorithm on a small deterministic dataset, so
// that future performance refactors cannot silently change ranking. The
// engine is deterministic by construction (frontiers are seeded in sorted
// order); if a change legitimately alters scores or order, regenerate the
// pinned values with:
//
//	go test -run TestGolden -v -golden-print
package banks_test

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"banks"
	"banks/internal/relational"
)

var goldenPrint = flag.Bool("golden-print", false, "print actual golden-test output instead of asserting")

// goldenDB builds a deterministic bibliography database: 4 authors, 2
// conferences, 5 papers and 6 authorship rows, searched with the default
// (random-walk) prestige.
func goldenDB(t testing.TB) *banks.DB {
	t.Helper()
	db := relational.NewDatabase()
	author, _ := db.CreateTable("author", []string{"name"}, nil)
	conf, _ := db.CreateTable("conference", []string{"name"}, nil)
	paper, _ := db.CreateTable("paper", []string{"title"}, []relational.FK{{Name: "conf", RefTable: "conference"}})
	writes, _ := db.CreateTable("writes", nil, []relational.FK{
		{Name: "author", RefTable: "author"},
		{Name: "paper", RefTable: "paper"},
	})
	author.Append([]string{"Jim Gray"}, nil)
	author.Append([]string{"Pat Selinger"}, nil)
	author.Append([]string{"Jeffrey Ullman"}, nil)
	author.Append([]string{"Michael Stonebraker"}, nil)
	conf.Append([]string{"VLDB"}, nil)
	conf.Append([]string{"SIGMOD"}, nil)
	paper.Append([]string{"Transaction Recovery Principles"}, []int32{0})
	paper.Append([]string{"Access Path Selection"}, []int32{1})
	paper.Append([]string{"Database System Concepts"}, []int32{0})
	paper.Append([]string{"Query Optimization Survey"}, []int32{1})
	paper.Append([]string{"Distributed Transaction Management"}, []int32{0})
	writes.Append(nil, []int32{0, 0})
	writes.Append(nil, []int32{1, 1})
	writes.Append(nil, []int32{2, 2})
	writes.Append(nil, []int32{3, 3})
	writes.Append(nil, []int32{0, 4})
	writes.Append(nil, []int32{1, 4})
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	bdb, err := banks.Build(db, banks.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return bdb
}

// goldenAnswers renders the top-k of one search in the pinned format: one
// line per answer with root label, score to 6 decimals, and the keyword
// leaf labels in keyword order.
func goldenAnswers(t testing.TB, db *banks.DB, query string, algo banks.Algorithm, opts banks.Options) string {
	t.Helper()
	res, err := db.Search(query, algo, opts)
	if err != nil {
		t.Fatalf("%s %q: %v", algo, query, err)
	}
	var sb strings.Builder
	for _, a := range res.Answers {
		leaves := make([]string, len(a.KeywordNodes))
		for i, u := range a.KeywordNodes {
			leaves[i] = db.NodeLabel(u)
		}
		fmt.Fprintf(&sb, "root=%s score=%.6f leaves=[%s]\n",
			db.NodeLabel(a.Root), a.Score, strings.Join(leaves, " | "))
	}
	return sb.String()
}

func goldenNear(t testing.TB, db *banks.DB, query string, opts banks.Options) string {
	t.Helper()
	res, _, err := db.Near(query, opts)
	if err != nil {
		t.Fatalf("near %q: %v", query, err)
	}
	var sb strings.Builder
	for _, r := range res {
		fmt.Fprintf(&sb, "node=%s act=%.6f\n", db.NodeLabel(r.Node), r.Activation)
	}
	return sb.String()
}

type goldenCase struct {
	name  string
	query string
	algo  banks.Algorithm
	near  bool
	k     int
	want  string
}

var goldenCases = []goldenCase{
	{
		name: "gray-transaction-bidirectional", query: "gray transaction", algo: banks.Bidirectional, k: 3,
		want: "root=writes[4] score=0.417023 leaves=[author[0]: Jim Gray | paper[4]: Distributed Transaction Management]\n" +
			"root=writes[0] score=0.411325 leaves=[author[0]: Jim Gray | paper[0]: Transaction Recovery Principles]\n" +
			"root=conference[0]: VLDB score=0.185834 leaves=[author[0]: Jim Gray | paper[4]: Distributed Transaction Management]\n",
	},
	{
		name: "gray-transaction-si-backward", query: "gray transaction", algo: banks.SIBackward, k: 3,
		want: "root=writes[4] score=0.417023 leaves=[author[0]: Jim Gray | paper[4]: Distributed Transaction Management]\n" +
			"root=writes[0] score=0.411325 leaves=[author[0]: Jim Gray | paper[0]: Transaction Recovery Principles]\n" +
			"root=conference[0]: VLDB score=0.185834 leaves=[author[0]: Jim Gray | paper[4]: Distributed Transaction Management]\n",
	},
	{
		// MI-Backward's third answer differs legitimately: Backward search
		// emits per-origin tree variants (§4.6), surfacing the paper-rooted
		// tree before the conference-rooted one.
		name: "gray-transaction-mi-backward", query: "gray transaction", algo: banks.MIBackward, k: 3,
		want: "root=writes[4] score=0.417023 leaves=[author[0]: Jim Gray | paper[4]: Distributed Transaction Management]\n" +
			"root=writes[0] score=0.411325 leaves=[author[0]: Jim Gray | paper[0]: Transaction Recovery Principles]\n" +
			"root=paper[0]: Transaction Recovery Principles score=0.210338 leaves=[author[0]: Jim Gray | paper[4]: Distributed Transaction Management]\n",
	},
	{
		name: "selinger-vldb-bidirectional", query: "selinger vldb", algo: banks.Bidirectional, k: 2,
		want: "root=writes[5] score=0.317047 leaves=[author[1]: Pat Selinger | conference[0]: VLDB]\n" +
			"root=writes[0] score=0.139203 leaves=[author[1]: Pat Selinger | conference[0]: VLDB]\n",
	},
	{
		name: "selinger-vldb-si-backward", query: "selinger vldb", algo: banks.SIBackward, k: 2,
		want: "root=writes[5] score=0.317047 leaves=[author[1]: Pat Selinger | conference[0]: VLDB]\n" +
			"root=writes[0] score=0.139203 leaves=[author[1]: Pat Selinger | conference[0]: VLDB]\n",
	},
	{
		name: "selinger-vldb-mi-backward", query: "selinger vldb", algo: banks.MIBackward, k: 2,
		want: "root=writes[5] score=0.317047 leaves=[author[1]: Pat Selinger | conference[0]: VLDB]\n" +
			"root=writes[0] score=0.139203 leaves=[author[1]: Pat Selinger | conference[0]: VLDB]\n",
	},
	{
		name: "near-gray-recovery", query: "gray recovery", near: true, k: 4,
		want: "node=paper[0]: Transaction Recovery Principles act=1.183024\n" +
			"node=author[0]: Jim Gray act=1.083051\n" +
			"node=writes[0] act=0.557687\n" +
			"node=writes[4] act=0.246397\n",
	},
}

func TestGoldenTopK(t *testing.T) {
	db := goldenDB(t)
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var got string
			if tc.near {
				got = goldenNear(t, db, tc.query, banks.Options{K: tc.k})
			} else {
				got = goldenAnswers(t, db, tc.query, tc.algo, banks.Options{K: tc.k})
			}
			if *goldenPrint {
				fmt.Printf("=== %s ===\n%s", tc.name, got)
				return
			}
			if got != tc.want {
				t.Errorf("golden mismatch:\n--- want ---\n%s--- got ---\n%s", tc.want, got)
			}
		})
	}
}

// TestGoldenTopKParallel re-runs every pinned query with intra-query
// parallelism (Workers: 4) and diffs against the same serial pins:
// parallel execution must not be able to change pinned ranking, scores or
// leaves. Near ignores Workers by documented fallback and is pinned to
// that too.
func TestGoldenTopKParallel(t *testing.T) {
	db := goldenDB(t)
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			opts := banks.Options{K: tc.k, Workers: 4}
			var got string
			if tc.near {
				got = goldenNear(t, db, tc.query, opts)
			} else {
				got = goldenAnswers(t, db, tc.query, tc.algo, opts)
			}
			if *goldenPrint {
				return // serial pass already printed the pins
			}
			if got != tc.want {
				t.Errorf("parallel golden mismatch (Workers: 4):\n--- want ---\n%s--- got ---\n%s", tc.want, got)
			}
		})
	}
}
