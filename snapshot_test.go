package banks_test

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"banks"
)

// openGoldenSnapshot round-trips the golden DB through a snapshot file
// and opens it with the given options.
func openGoldenSnapshot(t *testing.T, opts banks.SnapshotOptions) (built, snap *banks.DB) {
	t.Helper()
	built = goldenDB(t)
	path := filepath.Join(t.TempDir(), "golden.snap")
	if err := built.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	snap, err := banks.OpenSnapshotOptions(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := snap.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return built, snap
}

// sameFloat demands bit-identical float64s (the acceptance bar: a
// snapshot-opened DB is the same engine state, not an approximation).
func sameFloat(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// assertSameResults runs every golden query on both DBs and compares
// roots, scores, tree edges and keyword leaves bit-for-bit.
func assertSameResults(t *testing.T, built, snap *banks.DB) {
	t.Helper()
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.near {
				wantRes, wantStats, err := built.Near(tc.query, banks.Options{K: tc.k})
				if err != nil {
					t.Fatal(err)
				}
				gotRes, gotStats, err := snap.Near(tc.query, banks.Options{K: tc.k})
				if err != nil {
					t.Fatal(err)
				}
				if wantStats.NodesExplored != gotStats.NodesExplored {
					t.Errorf("explored %d vs %d", gotStats.NodesExplored, wantStats.NodesExplored)
				}
				if len(wantRes) != len(gotRes) {
					t.Fatalf("near result count %d vs %d", len(gotRes), len(wantRes))
				}
				for i := range wantRes {
					if wantRes[i].Node != gotRes[i].Node || !sameFloat(wantRes[i].Activation, gotRes[i].Activation) {
						t.Fatalf("near %d: %v/%v vs %v/%v", i,
							gotRes[i].Node, gotRes[i].Activation, wantRes[i].Node, wantRes[i].Activation)
					}
				}
				return
			}
			want, err := built.Search(tc.query, tc.algo, banks.Options{K: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			got, err := snap.Search(tc.query, tc.algo, banks.Options{K: tc.k})
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Answers) != len(got.Answers) {
				t.Fatalf("answer count %d vs %d", len(got.Answers), len(want.Answers))
			}
			for i, w := range want.Answers {
				g := got.Answers[i]
				if g.Root != w.Root {
					t.Fatalf("answer %d root %v vs %v", i, g.Root, w.Root)
				}
				if !sameFloat(g.Score, w.Score) || !sameFloat(g.EdgeScore, w.EdgeScore) || !sameFloat(g.NodeScore, w.NodeScore) {
					t.Fatalf("answer %d scores differ: %v/%v/%v vs %v/%v/%v",
						i, g.Score, g.EdgeScore, g.NodeScore, w.Score, w.EdgeScore, w.NodeScore)
				}
				if len(g.KeywordNodes) != len(w.KeywordNodes) {
					t.Fatalf("answer %d leaf count differs", i)
				}
				for j := range w.KeywordNodes {
					if g.KeywordNodes[j] != w.KeywordNodes[j] {
						t.Fatalf("answer %d leaf %d: %v vs %v", i, j, g.KeywordNodes[j], w.KeywordNodes[j])
					}
				}
				if len(g.Edges) != len(w.Edges) {
					t.Fatalf("answer %d edge count differs", i)
				}
				for j := range w.Edges {
					if g.Edges[j] != w.Edges[j] {
						t.Fatalf("answer %d edge %d: %+v vs %+v", i, j, g.Edges[j], w.Edges[j])
					}
				}
			}
		})
	}
}

// TestGoldenSnapshot is the acceptance gate for the snapshot store: the
// top-k roots, scores, leaves and tree edges of every golden query must be
// bit-identical between an in-memory Build and a snapshot-opened DB, for
// all three algorithms and Near.
func TestGoldenSnapshot(t *testing.T) {
	built, snap := openGoldenSnapshot(t, banks.SnapshotOptions{})
	if !snap.Snapshotted() {
		t.Fatal("snapshot-opened DB not marked as snapshotted")
	}
	assertSameResults(t, built, snap)
}

// TestGoldenSnapshotNoMmap exercises the heap-backed open path (the one
// non-unix platforms always take).
func TestGoldenSnapshotNoMmap(t *testing.T) {
	built, snap := openGoldenSnapshot(t, banks.SnapshotOptions{NoMmap: true})
	assertSameResults(t, built, snap)
}

// TestReadSnapshotStream decodes a snapshot from a plain io.Reader.
func TestReadSnapshotStream(t *testing.T) {
	built := goldenDB(t)
	var buf bytes.Buffer
	if _, err := built.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := banks.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	assertSameResults(t, built, snap)
}

// TestSnapshotEngine serves a snapshot-backed DB through the concurrent
// engine, which is the intended production wiring.
func TestSnapshotEngine(t *testing.T) {
	built, snap := openGoldenSnapshot(t, banks.SnapshotOptions{})
	eng, err := banks.NewEngine(snap, banks.EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := built.Search("gray transaction", banks.Bidirectional, banks.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Search(nil, "gray transaction", banks.Bidirectional, banks.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("engine answer count %d vs %d", len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		if got.Answers[i].Root != want.Answers[i].Root || !sameFloat(got.Answers[i].Score, want.Answers[i].Score) {
			t.Fatalf("engine answer %d differs", i)
		}
	}
}

// TestSnapshotLabels pins the degraded-label contract: without source
// rows a node renders as "table[row]" and Explain still works.
func TestSnapshotLabels(t *testing.T) {
	built, snap := openGoldenSnapshot(t, banks.SnapshotOptions{})
	if got, want := snap.NodeLabel(0), "author[0]"; got != want {
		t.Fatalf("NodeLabel = %q, want %q", got, want)
	}
	res, err := snap.Search("gray transaction", banks.Bidirectional, banks.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if out := snap.Explain(res.Answers[0]); out == "" {
		t.Fatal("empty Explain")
	}
	if built.Close() != nil {
		t.Fatal("Close on a built DB must be a nil no-op")
	}
}
