// Package banks is a from-scratch Go implementation of BANKS-II:
// "Bidirectional Expansion For Keyword Search on Graph Databases"
// (Kacholia et al., VLDB 2005).
//
// It provides schema-agnostic keyword search over graph-structured data:
// relational rows become nodes, foreign keys become weighted directed
// edges (plus derived backward edges that penalize hub shortcuts), and a
// query is answered by minimal rooted trees connecting nodes that match
// the keywords, ranked by a combination of path weights and node prestige.
//
// Three search algorithms are included: the paper's contribution,
// Bidirectional expanding search guided by spreading activation, and the
// two Backward expanding baselines (multi-iterator and single-iterator)
// it is evaluated against.
//
// Basic use:
//
//	db := ...                           // *relational.Database, or use datagen
//	bdb, err := banks.Build(db, banks.BuildOptions{})
//	res, err := bdb.Search("gray transaction", banks.Bidirectional, banks.Options{K: 10})
//	for _, a := range res.Answers {
//	    fmt.Println(bdb.Explain(a))
//	}
package banks

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"banks/internal/convert"
	"banks/internal/core"
	"banks/internal/graph"
	"banks/internal/index"
	"banks/internal/prestige"
	"banks/internal/relational"
	"banks/internal/store"
)

// Re-exported types so callers only import this package.
type (
	// Options configures a search; the zero value selects the paper's
	// defaults (k=10, µ=0.5, λ=0.2, dmax=8).
	Options = core.Options
	// Result is a search outcome: answers in output order plus counters.
	Result = core.Result
	// Answer is one minimal rooted answer tree.
	Answer = core.Answer
	// TreeEdge is one parent→child edge of an answer tree.
	TreeEdge = core.TreeEdge
	// Stats carries the §5.2 performance counters.
	Stats = core.Stats
	// NearResult is a node ranked by activation ("near queries").
	NearResult = core.NearResult
	// EmittedAnswer is one incremental answer release, as delivered on a
	// Stream (and to Options.Emit): the answer, its rank so far, and the
	// emission offset from search start.
	EmittedAnswer = core.EmittedAnswer
	// EmittedNear is one incremental near-query emission (Options.EmitNear).
	EmittedNear = core.EmittedNear
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
)

// Algorithm selects a search strategy. It aliases the core type so the
// dispatch logic is shared with internal/engine.
type Algorithm = core.Algo

// Available algorithms.
const (
	// Bidirectional is the paper's contribution (§4).
	Bidirectional = core.AlgoBidirectional
	// SIBackward is single-iterator Backward expanding search (§4.6).
	SIBackward = core.AlgoSIBackward
	// MIBackward is the original Backward expanding search of BANKS (§3).
	MIBackward = core.AlgoMIBackward
)

// Algorithms lists all supported algorithm names.
func Algorithms() []Algorithm { return core.Algos() }

// PrestigeMode selects how node prestige (§2.3) is computed at build time.
type PrestigeMode int

const (
	// PrestigeRandomWalk is the paper's biased PageRank (default).
	PrestigeRandomWalk PrestigeMode = iota
	// PrestigeIndegree is the cheaper BANKS-I log-indegree prestige.
	PrestigeIndegree
	// PrestigeUniform assigns every node prestige 1 (rank by edge score
	// only).
	PrestigeUniform
)

// BuildOptions configures DB construction.
type BuildOptions struct {
	// Prestige selects the node-prestige computation.
	Prestige PrestigeMode
	// PrestigeOptions tunes the random-walk mode.
	PrestigeOptions prestige.Options
	// ForwardWeight optionally assigns schema-defined forward edge weights
	// per foreign key (default: weight 1 for every edge).
	ForwardWeight func(table, fk string) float64
}

// DB is a searchable BANKS database: the data graph, the keyword index,
// and the mapping back to the source relational data.
//
// Concurrency contract: a DB is immutable after Build returns and is safe
// for use by any number of concurrent readers — Search, SearchTerms,
// SearchNodes, Near, their *Context variants, NodeLabel and Explain may all
// run in parallel on the same DB without synchronization. This covers
// intra-query parallelism too: a search with Options.Workers ≥ 1 spreads
// its own work across goroutines that share the same read-only graph and
// index state, and returns results bit-identical to a serial run. When
// Workers ≥ 1, Options.EdgeFilter and Options.EdgePriority callbacks are
// invoked from those worker goroutines and must be pure and safe for
// concurrent use. Do not mutate the exported fields (or the structures
// they point to) after Build; doing so voids the contract.
type DB struct {
	Graph     *graph.Graph
	Index     *index.Index
	Mapping   *convert.Mapping
	EdgeTypes *convert.EdgeTypes
	// Source is the originating relational data. It is nil for DBs opened
	// from a snapshot, which carry the queryable state only; NodeLabel and
	// Explain then fall back to "table[row]" labels.
	Source *relational.Database

	// snap keeps a snapshot-backed DB's file mapping alive; see Close.
	snap *store.Snapshot
}

// Build converts a frozen relational database into a searchable DB:
// data-graph construction (§2.1), keyword indexing (§3) and prestige
// precomputation (§2.3).
func Build(src *relational.Database, opts BuildOptions) (*DB, error) {
	if src == nil {
		return nil, errors.New("banks: nil source database")
	}
	res, err := convert.Build(src, convert.Options{ForwardWeight: opts.ForwardWeight})
	if err != nil {
		return nil, err
	}
	var p []float64
	switch opts.Prestige {
	case PrestigeRandomWalk:
		p, err = prestige.Compute(res.Graph, opts.PrestigeOptions)
		if err != nil {
			return nil, fmt.Errorf("banks: prestige: %w", err)
		}
	case PrestigeIndegree:
		p = prestige.Indegree(res.Graph)
	case PrestigeUniform:
		p = make([]float64, res.Graph.NumNodes())
		for i := range p {
			p[i] = 1
		}
	default:
		return nil, fmt.Errorf("banks: unknown prestige mode %d", opts.Prestige)
	}
	if err := res.Graph.SetPrestige(p); err != nil {
		return nil, err
	}
	return &DB{
		Graph:     res.Graph,
		Index:     res.Index,
		Mapping:   res.Mapping,
		EdgeTypes: res.EdgeTypes,
		Source:    src,
	}, nil
}

// Keywords splits a free-text query into normalized keyword terms.
func Keywords(query string) []string { return index.Tokenize(query) }

// KeywordNodes returns the nodes matching one term (§2.2 semantics: text
// matches plus relation-name matches).
func (d *DB) KeywordNodes(term string) []NodeID { return d.Index.Lookup(term) }

// Search runs a free-text keyword query with the selected algorithm.
func (d *DB) Search(query string, algo Algorithm, opts Options) (*Result, error) {
	return d.SearchContext(context.Background(), query, algo, opts)
}

// SearchContext is Search bounded by a context: on cancellation or deadline
// expiry the partial top-k generated so far is returned with
// Stats.Truncated set (a bounded search is not an error).
func (d *DB) SearchContext(ctx context.Context, query string, algo Algorithm, opts Options) (*Result, error) {
	terms := Keywords(query)
	if len(terms) == 0 {
		return nil, errors.New("banks: query contains no keywords")
	}
	return d.SearchTermsContext(ctx, terms, algo, opts)
}

// SearchTerms runs a query given as pre-split keyword terms.
func (d *DB) SearchTerms(terms []string, algo Algorithm, opts Options) (*Result, error) {
	return d.SearchTermsContext(context.Background(), terms, algo, opts)
}

// SearchTermsContext is SearchTerms bounded by a context.
func (d *DB) SearchTermsContext(ctx context.Context, terms []string, algo Algorithm, opts Options) (*Result, error) {
	kw := make([][]NodeID, len(terms))
	for i, t := range terms {
		kw[i] = d.Index.Lookup(t)
	}
	return d.SearchNodesContext(ctx, kw, algo, opts)
}

// SearchNodes runs a query given directly as per-keyword node sets.
func (d *DB) SearchNodes(kw [][]NodeID, algo Algorithm, opts Options) (*Result, error) {
	return d.SearchNodesContext(context.Background(), kw, algo, opts)
}

// SearchNodesContext is SearchNodes bounded by a context.
func (d *DB) SearchNodesContext(ctx context.Context, kw [][]NodeID, algo Algorithm, opts Options) (*Result, error) {
	return core.Search(ctx, d.Graph, algo, kw, opts)
}

// Near runs a near query (activation-ranked nodes, the §4.3 footnote-6
// extension), e.g. "papers near ‘recovery’ and ‘gray’".
func (d *DB) Near(query string, opts Options) ([]NearResult, Stats, error) {
	return d.NearContext(context.Background(), query, opts)
}

// NearContext is Near bounded by a context: on expiry the nodes activated
// so far are ranked and returned with Stats.Truncated set.
func (d *DB) NearContext(ctx context.Context, query string, opts Options) ([]NearResult, Stats, error) {
	terms := Keywords(query)
	if len(terms) == 0 {
		return nil, Stats{}, errors.New("banks: query contains no keywords")
	}
	kw := make([][]NodeID, len(terms))
	for i, t := range terms {
		kw[i] = d.Index.Lookup(t)
	}
	return core.Near(ctx, d.Graph, kw, opts)
}

// NodeLabel renders a node as "table[row]: text…" for display. Without
// source rows (snapshot-opened DBs) the text part is omitted.
func (d *DB) NodeLabel(u NodeID) string {
	ref := d.Mapping.RowOf(d.Graph, u)
	if d.Source == nil {
		return fmt.Sprintf("%s[%d]", ref.Table, ref.Row)
	}
	t := d.Source.Table(ref.Table)
	if t == nil {
		return fmt.Sprintf("%s[%d]", ref.Table, ref.Row)
	}
	row := t.Row(ref.Row)
	text := strings.Join(row.Texts, " | ")
	if len(text) > 60 {
		text = text[:57] + "..."
	}
	if text == "" {
		return fmt.Sprintf("%s[%d]", ref.Table, ref.Row)
	}
	return fmt.Sprintf("%s[%d]: %s", ref.Table, ref.Row, text)
}

// Explain renders an answer tree with source-row labels, one node per
// line, children indented under parents.
func (d *DB) Explain(a *Answer) string {
	return explainTree(d.NodeLabel, a)
}

// explainTree renders an answer tree with the given label function (the
// shared body of DB.Explain and Live.Explain).
func explainTree(label func(NodeID) string, a *Answer) string {
	children := map[NodeID][]NodeID{}
	for _, e := range a.Edges {
		children[e.From] = append(children[e.From], e.To)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "score=%.4f (edge=%.3f, prestige=%.3f)\n", a.Score, a.EdgeScore, a.NodeScore)
	var walk func(u NodeID, depth int)
	walk = func(u NodeID, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		if depth > 0 {
			sb.WriteString("└─ ")
		}
		sb.WriteString(label(u))
		sb.WriteByte('\n')
		for _, c := range children[u] {
			walk(c, depth+1)
		}
	}
	walk(a.Root, 0)
	return sb.String()
}
