package banks_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"banks"
)

// walWorld is one live serving instance recovered from (or started on)
// a snapshot + WAL pair.
type walWorld struct {
	db   *banks.DB
	eng  *banks.Engine
	live *banks.Live
}

// openWALWorld opens the snapshot and enables live mutations over it,
// with a WAL when walPath is non-empty. The result cache is disabled so
// every signature comes from a real search.
func openWALWorld(t *testing.T, snapPath, walPath string) *walWorld {
	t.Helper()
	db, err := banks.OpenSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	eng, err := banks.NewEngine(db, banks.EngineOptions{Workers: 4, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	live, err := banks.OpenLive(eng, banks.LiveOptions{
		SnapshotPath: snapPath,
		WALPath:      walPath,
	})
	if err != nil {
		t.Fatalf("OpenLive(%s, wal=%s): %v", snapPath, walPath, err)
	}
	t.Cleanup(func() { live.Close() })
	return &walWorld{db: db, eng: eng, live: live}
}

// walTestBatches returns a deterministic batch sequence exercising every
// op kind, phrased against the shared test DB. base is the node count of
// the pristine base; IDs from base upward are the ones the batches
// themselves insert (assignment is deterministic, so the victim and the
// reference agree on them).
func walTestBatches(base banks.NodeID) [][]banks.MutationOp {
	return [][]banks.MutationOp{
		{
			{Kind: banks.OpInsertNode, Table: "paper", Text: "walqux alpha recovery"},
			{Kind: banks.OpInsertNode, Table: "paper", Text: "walqux beta durability"},
		},
		{
			{Kind: banks.OpInsertEdge, From: base, To: base + 1, Weight: 1.0},
		},
		{
			{Kind: banks.OpInsertNode, Table: "author", Text: "walqux gamma"},
			{Kind: banks.OpInsertEdge, From: base + 2, To: base, Weight: 2.5},
		},
		{
			{Kind: banks.OpInsertTerm, Node: base, Term: "walcrash"},
			{Kind: banks.OpInsertTerm, Node: 3, Term: "walcrash"},
		},
		{
			{Kind: banks.OpDeleteEdge, From: base, To: base + 1},
			{Kind: banks.OpInsertEdge, From: base + 1, To: base + 2, Weight: 1.25},
		},
		{
			{Kind: banks.OpDeleteNode, Node: 11},
			{Kind: banks.OpInsertNode, Table: "paper", Text: "walqux delta epsilon"},
			{Kind: banks.OpDeleteTerm, Node: base, Term: "walcrash"},
		},
	}
}

// walTestQueries cover the mutated vocabulary and the untouched base.
var walTestQueries = []string{
	"walqux alpha",
	"walqux beta gamma",
	"walcrash walqux",
	"database transaction",
}

// walSignatures renders the deterministic fingerprint of the world's
// answers to every probe query.
func walSignatures(t *testing.T, w *walWorld) map[string]string {
	return walSignaturesFor(t, w, walTestQueries)
}

func walSignaturesFor(t *testing.T, w *walWorld, queries []string) map[string]string {
	t.Helper()
	sigs := make(map[string]string, len(queries))
	for _, q := range queries {
		res, err := w.eng.Search(context.Background(), q, banks.Bidirectional, banks.Options{K: 5, MaxNodes: 50_000})
		if err != nil {
			t.Fatalf("search %q: %v", q, err)
		}
		sigs[q] = resultSignature(res)
	}
	return sigs
}

// TestWALCrashDifferential is the crash-recovery acceptance proof: a
// victim applies batches through the WAL, then the log is cut at every
// record boundary AND mid-record — every byte offset a kill -9 can leave
// behind — and each cut is recovered into a fresh process image. The
// recovered world must (a) replay exactly the batches whose records
// survived complete, (b) answer every probe query bit-identically to a
// reference that applied exactly those batches with no WAL at all, and
// (c) leave the log truncated to the last acknowledged record, ready
// for new appends.
func TestWALCrashDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("crash differential skipped in -short")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "base.banksnap")
	if err := testDB(t).WriteSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	base := banks.NodeID(testDB(t).Graph.NumNodes())
	batches := walTestBatches(base)

	// Victim: apply every batch through the WAL, recording the end
	// offset of each record — the acknowledged-batch boundaries.
	victimWAL := filepath.Join(dir, "victim.wal")
	victim := openWALWorld(t, snap, victimWAL)
	boundaries := []int64{victim.live.WALStats().SizeBytes} // offset after 0 batches
	for i, batch := range batches {
		res, err := victim.live.Apply(batch)
		if err != nil {
			t.Fatalf("victim batch %d: %v", i, err)
		}
		if res.WALOffset <= boundaries[i] {
			t.Fatalf("batch %d: WAL offset %d not past %d", i, res.WALOffset, boundaries[i])
		}
		boundaries = append(boundaries, res.WALOffset)
	}
	if err := victim.live.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(victimWAL)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walBytes)) != boundaries[len(batches)] {
		t.Fatalf("WAL is %d bytes, last acknowledged offset %d", len(walBytes), boundaries[len(batches)])
	}

	// References: for every prefix length k, a world that applied exactly
	// the first k batches and never saw a WAL.
	refSigs := make([]map[string]string, len(batches)+1)
	for k := 0; k <= len(batches); k++ {
		ref := openWALWorld(t, snap, "")
		for i := 0; i < k; i++ {
			if _, err := ref.live.Apply(batches[i]); err != nil {
				t.Fatalf("reference %d batch %d: %v", k, i, err)
			}
		}
		refSigs[k] = walSignatures(t, ref)
	}

	// Every crash point: the exact boundary after k records, plus two
	// mid-record cuts (inside the next frame's header, and mid-payload).
	for k := 0; k <= len(batches); k++ {
		cuts := []int64{boundaries[k]}
		if k < len(batches) {
			cuts = append(cuts, boundaries[k]+1, boundaries[k]+(boundaries[k+1]-boundaries[k])/2)
		}
		for _, cut := range cuts {
			t.Run(fmt.Sprintf("records=%d/cut=%d", k, cut), func(t *testing.T) {
				cutPath := filepath.Join(dir, fmt.Sprintf("cut.%d.wal", cut))
				if err := os.WriteFile(cutPath, walBytes[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				rec := openWALWorld(t, snap, cutPath)
				if got := rec.live.Replayed(); got != k {
					t.Fatalf("replayed %d records, want %d", got, k)
				}
				if st := rec.live.Stats(); st.DeltaVersion != uint64(k) {
					t.Fatalf("recovered delta version %d, want %d", st.DeltaVersion, k)
				}
				if got := rec.live.WALStats().SizeBytes; got != boundaries[k] {
					t.Fatalf("torn tail not repaired: log at %d bytes, want %d", got, boundaries[k])
				}
				got := walSignatures(t, rec)
				for _, q := range walTestQueries {
					if got[q] != refSigs[k][q] {
						t.Errorf("query %q diverges from reference after recovering %d records:\nrecovered:\n%s\nreference:\n%s",
							q, k, got[q], refSigs[k][q])
					}
				}
				// The recovered log must accept the next batch on a clean
				// boundary — recovery is not read-only.
				if k < len(batches) {
					res, err := rec.live.Apply(batches[k])
					if err != nil {
						t.Fatalf("apply after recovery: %v", err)
					}
					if res.DeltaVersion != uint64(k+1) {
						t.Fatalf("post-recovery version %d, want %d", res.DeltaVersion, k+1)
					}
				}
			})
		}
	}

	// A corrupt middle — damage under acknowledged records — must refuse
	// recovery loudly, never silently drop batches.
	if len(batches) >= 2 {
		corrupt := append([]byte(nil), walBytes...)
		corrupt[boundaries[0]+12] ^= 0xff // inside record 1, records 2.. follow
		corruptPath := filepath.Join(dir, "corrupt.wal")
		if err := os.WriteFile(corruptPath, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := banks.OpenSnapshot(snap)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		eng, err := banks.NewEngine(db, banks.EngineOptions{CacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := banks.OpenLive(eng, banks.LiveOptions{SnapshotPath: snap, WALPath: corruptPath}); err == nil {
			t.Fatal("OpenLive accepted a WAL with a corrupt middle")
		}
	}
}

// TestLiveWALRestartAfterCompaction is the restart path banksd takes: a
// server that mutated, compacted, and mutated again shuts down cleanly;
// the restart opens the newest generation via LatestSnapshotPath and
// replays only the post-compaction records (the pre-compaction ones are
// folded into the base and the log was truncated). The restarted world
// answers bit-identically to the world that never went down.
func TestLiveWALRestartAfterCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("restart test skipped in -short")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "base.banksnap")
	if err := testDB(t).WriteSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	base := banks.NodeID(testDB(t).Graph.NumNodes())
	batches := walTestBatches(base)
	wal := filepath.Join(dir, "live.wal")

	w := openWALWorld(t, snap, wal)
	for i, batch := range batches[:4] {
		if _, err := w.live.Apply(batch); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	cres, err := w.live.Compact(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !cres.WALReset {
		t.Fatalf("compaction left the WAL standing: %+v", cres)
	}
	for i, batch := range batches[4:] {
		if _, err := w.live.Apply(batch); err != nil {
			t.Fatalf("post-compaction batch %d: %v", i, err)
		}
	}
	want := walSignatures(t, w)
	st := w.live.Stats()
	if err := w.live.Close(); err != nil {
		t.Fatal(err)
	}

	latest := banks.LatestSnapshotPath(snap)
	if latest != cres.Path {
		t.Fatalf("LatestSnapshotPath = %q, want %q", latest, cres.Path)
	}
	r := openWALWorld(t, latest, wal)
	if got := r.live.Replayed(); got != 2 {
		t.Fatalf("restart replayed %d records, want the 2 post-compaction ones", got)
	}
	rst := r.live.Stats()
	if rst.Generation != st.Generation || rst.DeltaVersion != st.DeltaVersion {
		t.Fatalf("restart at (gen %d, ver %d), shutdown was (gen %d, ver %d)",
			rst.Generation, rst.DeltaVersion, st.Generation, st.DeltaVersion)
	}
	got := walSignatures(t, r)
	for _, q := range walTestQueries {
		if got[q] != want[q] {
			t.Errorf("query %q diverges after restart:\nrestarted:\n%s\nlive:\n%s", q, got[q], want[q])
		}
	}
}

// TestLiveWALConcurrentHammer races WAL-backed mutations, searches, and
// compactions under the race detector, then restarts from what is on
// disk and checks the recovered state matches the final live state —
// the same invariant the crash differential proves, now with real
// concurrency over the log.
func TestLiveWALConcurrentHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("hammer skipped in -short")
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "base.banksnap")
	if err := testDB(t).WriteSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "live.wal")
	w := openWALWorld(t, snap, wal)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var queries, batches, compactions atomic.Uint64
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Writer: insert nodes carrying a searchable marker term, and edges
	// between its own earlier inserts.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(21))
		var mine []banks.NodeID
		for ctx.Err() == nil {
			ops := []banks.MutationOp{{Kind: banks.OpInsertNode, Table: "paper",
				Text: fmt.Sprintf("hammerwal %s", []string{"alpha", "beta", "gamma", "delta"}[rng.Intn(4)])}}
			if len(mine) >= 2 {
				u, v := mine[rng.Intn(len(mine))], mine[rng.Intn(len(mine))]
				if u != v {
					ops = append(ops, banks.MutationOp{Kind: banks.OpInsertEdge, From: u, To: v, Weight: 1 + rng.Float64()})
				}
			}
			res, err := w.live.Apply(ops)
			if err != nil {
				fail(fmt.Errorf("apply: %w", err))
				return
			}
			mine = append(mine, res.Assigned...)
			batches.Add(1)
		}
	}()

	// Readers: mixed base and mutated vocabulary.
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			probes := []string{"hammerwal alpha", "hammerwal beta", "database transaction", "index spatial"}
			for ctx.Err() == nil {
				q := probes[rng.Intn(len(probes))]
				if _, err := w.eng.Search(ctx, q, banks.Bidirectional, banks.Options{K: 3, MaxNodes: 20_000}); err != nil {
					if ctx.Err() == nil {
						fail(fmt.Errorf("search %q: %w", q, err))
					}
					return
				}
				queries.Add(1)
			}
		}(int64(300 + r))
	}

	// Compactor: fold the overlay every 150ms.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(150 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if _, err := w.live.Compact(ctx); err != nil {
					if ctx.Err() == nil {
						fail(fmt.Errorf("compact: %w", err))
					}
					return
				}
				compactions.Add(1)
			}
		}
	}()

	time.Sleep(600 * time.Millisecond)
	cancel()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("hammer error: %v", err)
	}
	if queries.Load() == 0 || batches.Load() == 0 || compactions.Load() == 0 {
		t.Fatalf("hammer made no progress: %d queries, %d batches, %d compactions",
			queries.Load(), batches.Load(), compactions.Load())
	}

	hammerProbes := []string{"hammerwal alpha", "hammerwal beta", "hammerwal gamma delta", "database transaction"}
	want := walSignaturesFor(t, w, hammerProbes)
	st := w.live.Stats()
	if err := w.live.Close(); err != nil {
		t.Fatal(err)
	}

	r := openWALWorld(t, banks.LatestSnapshotPath(snap), wal)
	rst := r.live.Stats()
	if rst.Generation != st.Generation || rst.DeltaVersion != st.DeltaVersion {
		t.Fatalf("restart at (gen %d, ver %d), shutdown was (gen %d, ver %d)",
			rst.Generation, rst.DeltaVersion, st.Generation, st.DeltaVersion)
	}
	got := walSignaturesFor(t, r, hammerProbes)
	for q, sig := range want {
		if got[q] != sig {
			t.Errorf("query %q diverges after restart", q)
		}
	}
	t.Logf("hammer: %d queries, %d batches, %d compactions; restart replayed %d records",
		queries.Load(), batches.Load(), compactions.Load(), r.live.Replayed())
}
